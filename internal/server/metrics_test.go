package server

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// checkExposition asserts text is valid Prometheus text exposition: every
// sample belongs to a declared family, HELP/TYPE precede samples, histogram
// buckets are cumulative and end in +Inf, and every histogram series has
// _sum and _count. Shared by the server e2e tests.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
	declared := map[string]string{} // base name -> type
	type histSeries struct {
		lastCum  float64
		sawInf   bool
		sawSum   bool
		sawCount bool
	}
	hists := map[string]*histSeries{} // name+labels(without le)
	stripLe := regexp.MustCompile(`le="[^"]*",?`)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			declared[parts[2]] = parts[3]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("bad sample line: %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if declared[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		typ, ok := declared[base]
		if !ok {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		val, err := strconv.ParseFloat(strings.Replace(valStr, "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if typ == "counter" && val < 0 {
			t.Errorf("negative counter: %q", line)
		}
		if typ == "histogram" {
			series := stripLe.ReplaceAllString(labels, "")
			series = strings.ReplaceAll(series, ",}", "}")
			if series == "{}" {
				series = ""
			}
			key := base + series
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{}
				hists[key] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if val < hs.lastCum {
					t.Errorf("non-cumulative bucket in %q (prev %v)", line, hs.lastCum)
				}
				hs.lastCum = val
				if strings.Contains(labels, `le="+Inf"`) {
					hs.sawInf = true
				}
			case strings.HasSuffix(name, "_sum"):
				hs.sawSum = true
			case strings.HasSuffix(name, "_count"):
				hs.sawCount = true
			}
		}
	}
	for key, hs := range hists {
		if !hs.sawInf || !hs.sawSum || !hs.sawCount {
			t.Errorf("histogram %s missing +Inf bucket, _sum or _count", key)
		}
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_ops_total", "Total ops.")
	c.Add(3)
	cv := reg.NewCounterVec("test_requests_total", "Requests.", "endpoint", "code")
	cv.Inc("linear", "200")
	cv.Inc("linear", "200")
	cv.Inc("moebius", "429")
	g := reg.NewGauge("test_depth", "Depth.")
	g.Set(7)
	reg.NewGaugeFunc("test_live", "Live reading.", func() float64 { return 2.5 })
	h := reg.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	hv := reg.NewHistogramVec("test_batch", "Batch sizes.", []float64{1, 2, 4}, "endpoint")
	hv.With("linear").Observe(1)
	hv.With("linear").Observe(3)
	hv.With("moebius").Observe(8)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkExposition(t, text)

	for _, want := range []string{
		"test_ops_total 3",
		`test_requests_total{code="200",endpoint="linear"} 2`,
		`test_requests_total{code="429",endpoint="moebius"} 1`,
		"test_depth 7",
		"test_live 2.5",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="10"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_batch_bucket{endpoint="linear",le="1"} 1`,
		`test_batch_bucket{endpoint="linear",le="4"} 2`,
		`test_batch_bucket{endpoint="moebius",le="+Inf"} 1`,
		`test_batch_sum{endpoint="linear"} 4`,
		`test_batch_count{endpoint="moebius"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestHistogramMaxObservedBound(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("t", "t.", []float64{1, 2, 4})
	if got := h.MaxObservedBound(); got != 0 {
		t.Fatalf("empty histogram: MaxObservedBound = %v, want 0", got)
	}
	h.Observe(1)
	if got := h.MaxObservedBound(); got != 1 {
		t.Fatalf("after Observe(1): MaxObservedBound = %v, want 1", got)
	}
	h.Observe(3)
	if got := h.MaxObservedBound(); got != 4 {
		t.Fatalf("after Observe(3): MaxObservedBound = %v, want 4", got)
	}
	h.Observe(100)
	if got := h.MaxObservedBound(); !math.IsInf(got, 1) {
		t.Fatalf("after Observe(100): MaxObservedBound = %v, want +Inf", got)
	}
	if h.Count() != 3 || h.Sum() != 104 {
		t.Fatalf("Count/Sum = %d/%v, want 3/104", h.Count(), h.Sum())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		7:            "7",
		2.5:          "2.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		-3:           "-3",
		0.000125:     "0.000125",
		1e18:         "1e+18",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
