// Package server is the solve service over the hardened solver runtime: an
// HTTP JSON API (stdlib only) exposing the ordinary, general, linear/Möbius
// and loop-source solvers behind admission control (bounded queue, load
// shedding), a dynamic batch coalescer for Möbius-family requests, a
// compiled-plan LRU cache, a worker pool sized off GOMAXPROCS, and built-in
// observability (/healthz, /readyz, Prometheus /metrics). cmd/irserved is a
// thin daemon over this package; the client subpackage is the matching Go
// client.
//
// # Request path
//
// Every solve request is validated before admission (client mistakes cost no
// worker time), then queued; a full queue sheds with 429 + Retry-After.
// Workers execute solves under the request's context, so deadlines and
// client disconnects abandon work promptly. Möbius-family requests pass
// through the coalescer, which holds the first request of a batch up to
// BatchWindow waiting for companions and dispatches the whole batch as one
// sweep. Solves resolve their structure through the plan cache (see
// plancache.go): requests sharing an index-map fingerprint reuse one
// compiled plan and pay only the data phase; DESIGN.md §9 has the diagram.
//
// # Invariants
//
// Responses are bit-identical whether a solve ran direct, through a cached
// plan, batched, or fell back to a per-item solve — caching and coalescing
// are performance layers, never semantic ones. Every admitted request gets
// exactly one response; Shutdown drains in-flight work before the pool
// exits.
//
// # Concurrency
//
// Server is safe for concurrent use by any number of HTTP clients. Internal
// state is guarded per-structure (the pool's queue, the coalescer's
// channel, the plan cache's mutex, atomic metrics); handlers share no
// mutable per-request state.
package server
