// Package client is the Go client for the irserved solve service: typed
// wrappers over the HTTP JSON API with the same request/response shapes the
// server defines (internal/server, ir wire types). Stdlib only.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"indexedrec/internal/server"
)

// Client talks to one irserved instance.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080" (no trailing
	// slash).
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Tenant, when non-empty, is sent as the X-IR-Tenant header so the
	// server accounts this client's solves under that tenant's admission
	// quota and fair-queueing weight.
	Tenant string
	// ClusterToken, when non-empty, is sent as the X-IR-Cluster-Token
	// header; coordinators started with a registration token require it on
	// the membership endpoints (register/heartbeat/deregister).
	ClusterToken string
}

// New returns a client for the given base URL.
func New(base string) *Client { return &Client{Base: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status int
	// RetryAfter is the server's backoff hint on 429/503 responses
	// (zero when absent).
	RetryAfter time.Duration
	Message    string
}

// Error formats the failure with its HTTP status and server message.
func (e *APIError) Error() string {
	return fmt.Sprintf("irserved: HTTP %d: %s", e.Status, e.Message)
}

// IsShed reports whether the server shed this request (queue full) or is
// draining — the cases a caller should back off and retry.
func (e *APIError) IsShed() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// do posts req as JSON to path and decodes the response into out.
func (c *Client) do(ctx context.Context, path string, reqBody, out any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("irserved client: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set(server.TenantHeader, c.Tenant)
	}
	if c.ClusterToken != "" {
		req.Header.Set(server.ClusterTokenHeader, c.ClusterToken)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("irserved client: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(ra) * time.Second
		}
		var er server.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
		} else {
			apiErr.Message = string(body)
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("irserved client: decoding response: %w", err)
	}
	return nil
}

// SolveOrdinary solves an ordinary system on the server.
func (c *Client) SolveOrdinary(ctx context.Context, req server.OrdinaryRequest) (*server.OrdinaryResponse, error) {
	var out server.OrdinaryResponse
	if err := c.do(ctx, server.APIPrefix+"ordinary", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveGeneral solves a general system on the server.
func (c *Client) SolveGeneral(ctx context.Context, req server.GeneralRequest) (*server.GeneralResponse, error) {
	var out server.GeneralResponse
	if err := c.do(ctx, server.APIPrefix+"general", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveLinear solves an affine recurrence; close-together calls coalesce
// into one server-side batch (see MoebiusResponse.BatchSize).
func (c *Client) SolveLinear(ctx context.Context, req server.LinearRequest) (*server.MoebiusResponse, error) {
	var out server.MoebiusResponse
	if err := c.do(ctx, server.APIPrefix+"linear", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveMoebius solves a fractional-linear recurrence (batch-coalesced like
// SolveLinear).
func (c *Client) SolveMoebius(ctx context.Context, req server.MoebiusRequest) (*server.MoebiusResponse, error) {
	var out server.MoebiusResponse
	if err := c.do(ctx, server.APIPrefix+"moebius", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveGrid2D solves a 2-D recurrence grid (edit distance, Smith–Waterman,
// linear grids) by server-side anti-diagonal wavefronts.
func (c *Client) SolveGrid2D(ctx context.Context, req server.Grid2DRequest) (*server.Grid2DResponse, error) {
	var out server.Grid2DResponse
	if err := c.do(ctx, server.APIPrefix+"grid2d", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveLoop ships DSL loop source for server-side classify-and-execute.
func (c *Client) SolveLoop(ctx context.Context, req server.LoopRequest) (*server.LoopResponse, error) {
	var out server.LoopResponse
	if err := c.do(ctx, server.APIPrefix+"loop", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// get fetches a text endpoint.
func (c *Client) get(ctx context.Context, path string) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return 0, "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	return resp.StatusCode, string(body), err
}

// getJSON fetches a JSON endpoint into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	code, body, err := c.get(ctx, path)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return &APIError{Status: code, Message: body}
	}
	if err := json.Unmarshal([]byte(body), out); err != nil {
		return fmt.Errorf("irserved client: decoding response: %w", err)
	}
	return nil
}

// Healthz reports whether the server process is up.
func (c *Client) Healthz(ctx context.Context) error {
	code, body, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return &APIError{Status: code, Message: body}
	}
	return nil
}

// Readyz reports whether the server is accepting solves (false during
// graceful drain).
func (c *Client) Readyz(ctx context.Context) (bool, error) {
	code, _, err := c.get(ctx, "/readyz")
	if err != nil {
		return false, err
	}
	return code == http.StatusOK, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	code, body, err := c.get(ctx, "/metrics")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", &APIError{Status: code, Message: body}
	}
	return body, nil
}
