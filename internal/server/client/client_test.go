package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"indexedrec/internal/server"
	"indexedrec/ir"
)

func startService(t *testing.T, cfg server.Config) (*server.Server, *Client) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, New(ts.URL)
}

// TestClientEndToEnd drives every typed client method against an in-process
// service: ≥32 concurrent linear solves that must coalesce, plus one call
// per remaining endpoint.
func TestClientEndToEnd(t *testing.T) {
	s, c := startService(t, server.Config{
		BatchWindow: 25 * time.Millisecond,
		MaxBatch:    16,
		QueueDepth:  128,
	})
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if ready, err := c.Readyz(ctx); err != nil || !ready {
		t.Fatalf("Readyz = %v, %v", ready, err)
	}

	// 40 concurrent linear chains X[i] := 2*X[i-1] over x0[0] = 1.
	const reqs = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxBatch := 0
	errCh := make(chan error, reqs)
	for k := 0; k < reqs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			n := 6 + k%4
			req := server.LinearRequest{M: n + 1, X0: make([]float64, n+1)}
			req.X0[0] = 1
			for i := 0; i < n; i++ {
				req.G = append(req.G, i+1)
				req.F = append(req.F, i)
				req.A = append(req.A, 2)
				req.B = append(req.B, 0)
			}
			out, err := c.SolveLinear(ctx, req)
			if err != nil {
				errCh <- fmt.Errorf("request %d: %v", k, err)
				return
			}
			want := 1.0
			for i := 0; i <= n; i++ {
				if out.Values[i] != want {
					errCh <- fmt.Errorf("request %d: X[%d] = %v, want %v", k, i, out.Values[i], want)
					return
				}
				want *= 2
			}
			mu.Lock()
			if out.BatchSize > maxBatch {
				maxBatch = out.BatchSize
			}
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if maxBatch < 2 {
		t.Errorf("max reported batch size = %d, want >= 2 (coalescing)", maxBatch)
	}
	batches, coalesced := s.BatchStats()
	t.Logf("%d requests coalesced into %d batches, max batch %d", coalesced, batches, maxBatch)

	// Ordinary via wire system types.
	sys := ir.FromFuncs(8, 9, func(i int) int { return i + 1 }, func(i int) int { return i }, nil)
	ord, err := c.SolveOrdinary(ctx, server.OrdinaryRequest{
		System: ir.WireFromSystem(sys),
		Op:     "int64-add",
		Init:   json.RawMessage(`[1,1,1,1,1,1,1,1,1]`),
	})
	if err != nil {
		t.Fatalf("SolveOrdinary: %v", err)
	}
	for i, v := range ord.ValuesInt {
		if v != int64(i+1) {
			t.Fatalf("ordinary ValuesInt = %v", ord.ValuesInt)
		}
	}

	// General: repeated squaring mod p.
	gsys := ir.FromFuncs(3, 1, func(i int) int { return 0 }, func(i int) int { return 0 },
		func(i int) int { return 0 })
	gen, err := c.SolveGeneral(ctx, server.GeneralRequest{
		System: ir.WireFromSystem(gsys),
		Op:     "mul-mod",
		Mod:    1000003,
		Init:   json.RawMessage(`[2]`),
	})
	if err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	if gen.ValuesInt[0] != 256 {
		t.Fatalf("general value = %v, want 256", gen.ValuesInt)
	}

	// Möbius continued fraction.
	mreq := server.MoebiusRequest{M: 4, X0: []float64{1, 0, 0, 0}}
	for i := 0; i < 3; i++ {
		mreq.G = append(mreq.G, i+1)
		mreq.F = append(mreq.F, i)
		mreq.A = append(mreq.A, 0)
		mreq.B = append(mreq.B, 1)
		mreq.C = append(mreq.C, 1)
		mreq.D = append(mreq.D, 1)
	}
	mo, err := c.SolveMoebius(ctx, mreq)
	if err != nil {
		t.Fatalf("SolveMoebius: %v", err)
	}
	if diff := mo.Values[3] - 0.6; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("moebius x[3] = %v, want 0.6", mo.Values[3])
	}

	// Loop source round trip.
	lo, err := c.SolveLoop(ctx, server.LoopRequest{
		Loop:   "for i = 1 to n do X[i] := X[i-1] + X[i]",
		N:      4,
		Arrays: map[string][]float64{"X": {1, 1, 1, 1, 1}},
	})
	if err != nil {
		t.Fatalf("SolveLoop: %v", err)
	}
	if lo.Arrays["X"][4] != 5 {
		t.Fatalf("loop X = %v", lo.Arrays["X"])
	}
	if !strings.Contains(lo.Strategy, "Moebius") && !strings.Contains(lo.Strategy, "GIR") &&
		!strings.Contains(lo.Strategy, "Ordinary") {
		t.Errorf("strategy = %q", lo.Strategy)
	}

	// Metrics text is fetchable and mentions the traffic we created.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if !strings.Contains(text, `irserved_requests_total{code="200",endpoint="linear"}`) {
		t.Errorf("metrics missing linear counter:\n%s", text)
	}
}

// TestClientAPIError asserts typed errors surface status, message and the
// shed/backoff hint.
func TestClientAPIError(t *testing.T) {
	_, c := startService(t, server.Config{})
	ctx := context.Background()
	_, err := c.SolveLinear(ctx, server.LinearRequest{M: 2, G: []int{5}, F: []int{0},
		A: []float64{1}, B: []float64{1}, X0: []float64{1, 0}})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != 400 || ae.Message == "" {
		t.Errorf("APIError = %+v", ae)
	}
	if ae.IsShed() {
		t.Error("400 must not read as shed")
	}
	if (&APIError{Status: 429}).IsShed() != true || (&APIError{Status: 503}).IsShed() != true {
		t.Error("429/503 must read as shed")
	}
}
