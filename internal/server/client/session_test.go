package client

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"indexedrec/internal/server"
)

// TestClientSessionRoundTrip drives the typed session methods end to end:
// open a linear session, append twice, snapshot, close, and assert the
// error mapping afterwards (appends and gets on a closed session answer
// 404 through APIError).
func TestClientSessionRoundTrip(t *testing.T) {
	_, c := startService(t, server.Config{})
	ctx := context.Background()

	// X[i+1] := X[i] + 1 from X[0] = 1: cell i holds i+1 once written.
	open, err := c.OpenSession(ctx, server.SessionOpenRequest{
		Family: "linear",
		M:      8, G: []int{1, 2}, F: []int{0, 1},
		A: []float64{1, 1}, B: []float64{1, 1},
		X0: []float64{1, 0, 0, 0, 0, 0, 0, 0},
	})
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if open.N != 2 || open.M != 8 || open.Family != "moebius" {
		t.Fatalf("open = %+v", open)
	}

	for step := 0; step < 2; step++ {
		at := 3 + step
		ar, err := c.Append(ctx, open.ID, server.SessionAppendRequest{
			G: []int{at}, F: []int{at - 1}, A: []float64{1}, B: []float64{1},
		})
		if err != nil {
			t.Fatalf("Append %d: %v", step, err)
		}
		if len(ar.Values) != 1 || ar.Values[0] != float64(at+1) {
			t.Fatalf("Append %d values = %v, want [%d]", step, ar.Values, at+1)
		}
		if ar.Appends != int64(step+1) {
			t.Fatalf("Append %d counter = %d", step, ar.Appends)
		}
	}

	st, err := c.GetSession(ctx, open.ID)
	if err != nil {
		t.Fatalf("GetSession: %v", err)
	}
	if st.N != 4 || st.Values[4] != 5 {
		t.Fatalf("state = %+v", st)
	}

	if err := c.CloseSession(ctx, open.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	var apiErr *APIError
	if _, err := c.Append(ctx, open.ID, server.SessionAppendRequest{
		G: []int{5}, F: []int{4}, A: []float64{1}, B: []float64{1},
	}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("Append after close: %v, want 404", err)
	}
	if _, err := c.GetSession(ctx, open.ID); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("GetSession after close: %v, want 404", err)
	}
	if err := c.CloseSession(ctx, open.ID); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("CloseSession twice: %v, want 404", err)
	}
}
