package client

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"

	"indexedrec/internal/server"
)

// Connection reuse. A coordinator fires many small shard requests at the
// same few workers; the stdlib default of two idle connections per host
// forces most of them through fresh TCP handshakes under fan-out. One
// shared transport with a deeper idle pool keeps the scatter path on warm
// connections without every caller tuning http.Transport by hand.

// SharedTransport returns the process-wide HTTP transport for irserved
// clients: keep-alives on, a per-host idle pool sized for coordinator
// fan-out, and bounded dial/TLS handshake times. All clients built with
// NewPooled share it, so connections to a worker are reused across client
// values.
func SharedTransport() *http.Transport {
	sharedOnce.Do(func() {
		d := &net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}
		shared = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
			DialContext:         d.DialContext,
			TLSHandshakeTimeout: 10 * time.Second,
		}
	})
	return shared
}

var (
	sharedOnce sync.Once
	shared     *http.Transport
)

// NewPooled returns a client on the shared keep-alive transport with a
// per-request timeout (0 means no client-side cap; the server still applies
// its own deadline). Use this for coordinators and anything else that talks
// to the same hosts repeatedly.
func NewPooled(base string, timeout time.Duration) *Client {
	return &Client{
		Base: base,
		HTTP: &http.Client{Transport: SharedTransport(), Timeout: timeout},
	}
}

// SolveShard executes one shard of a plan on a worker (the worker role's
// POST /v1/shard/solve).
func (c *Client) SolveShard(ctx context.Context, req server.ShardRequest) (*server.ShardResponse, error) {
	var out server.ShardResponse
	if err := c.do(ctx, server.ShardPrefix+"solve", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Version fetches the server's build identification (GET /version).
func (c *Client) Version(ctx context.Context) (*server.VersionResponse, error) {
	var out server.VersionResponse
	if err := c.getJSON(ctx, "/version", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Register announces a worker to a coordinator (POST /v1/cluster/register)
// and returns the granted membership lease.
func (c *Client) Register(ctx context.Context, req server.RegisterRequest) (*server.RegisterResponse, error) {
	var out server.RegisterResponse
	if err := c.do(ctx, server.ClusterPrefix+"register", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Heartbeat renews a registered worker's membership lease. A 404 APIError
// means the coordinator no longer knows the worker (lease expired or the
// coordinator restarted); the caller should Register again.
func (c *Client) Heartbeat(ctx context.Context, addr string) (*server.RegisterResponse, error) {
	var out server.RegisterResponse
	if err := c.do(ctx, server.ClusterPrefix+"heartbeat", server.MemberRequest{Addr: addr}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Deregister removes a draining worker from the coordinator's fleet.
func (c *Client) Deregister(ctx context.Context, addr string) error {
	return c.do(ctx, server.ClusterPrefix+"deregister", server.MemberRequest{Addr: addr}, nil)
}
