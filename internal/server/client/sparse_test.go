package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"indexedrec/internal/server"
	"indexedrec/ir"
)

// TestClientSparseSolve round-trips a sparse-encoded solve through the
// typed client and asserts malformed touched-cell sets decode client-side
// as 422 APIErrors.
func TestClientSparseSolve(t *testing.T) {
	_, c := startService(t, server.Config{})
	ctx := context.Background()

	n, stride := 32, 1000
	g := make([]int, n)
	f := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = stride * (i + 1)
		f[i] = stride * i
	}
	sp, err := ir.NewSparseSystem(stride*(n+1)+1, g, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int64, sp.NumCells())
	for i := range init {
		init[i] = 1
	}
	blob, _ := json.Marshal(init)
	req := server.OrdinaryRequest{System: ir.WireFromSparse(sp), Op: "int64-add", Init: blob}

	out, err := c.SolveOrdinary(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ValuesInt) != sp.NumCells() || len(out.Cells) != sp.NumCells() {
		t.Fatalf("got %d values over %d cells, want %d", len(out.ValuesInt), len(out.Cells), sp.NumCells())
	}
	// The chain sums 1 down each link: compact cell i holds i+1.
	for i, v := range out.ValuesInt {
		if v != int64(i)+1 {
			t.Fatalf("compact cell %d = %d, want %d", i, v, i+1)
		}
	}

	// Duplicate touched cells must surface as a typed 422, not a transport
	// error, so callers can distinguish encoding defects from availability.
	bad := req
	bad.System.Cells = append([]int(nil), req.System.Cells...)
	bad.System.Cells[1] = bad.System.Cells[0]
	_, err = c.SolveOrdinary(ctx, bad)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate cells: %v, want APIError with status 422", err)
	}
}
