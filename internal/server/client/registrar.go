package client

import (
	"context"
	"errors"
	"log"
	"net/http"
	"strings"
	"time"

	"indexedrec/internal/server"
)

// Registrar keeps one worker enrolled in a coordinator's elastic fleet: it
// registers the worker's advertised address, heartbeats at a third of the
// granted lease so the membership never lapses while the worker is healthy,
// re-registers when the coordinator forgets it (lease expiry during a
// partition, or a coordinator restart), and deregisters on shutdown so a
// graceful drain leaves the fleet immediately instead of waiting out the
// lease.
type Registrar struct {
	cfg RegistrarConfig
	c   *Client
}

// RegistrarConfig parameterizes a Registrar.
type RegistrarConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port"; a bare
	// host:port gets an http:// prefix).
	Coordinator string
	// Advertise is the address the coordinator should dial the worker on;
	// it is also the membership key.
	Advertise string
	// Version is reported at registration for mixed-fleet diagnosis.
	Version string
	// Token is the shared cluster registration token, required when the
	// coordinator gates its membership API (ircoord -cluster-token).
	Token string
	// Interval overrides the heartbeat period; 0 derives it from the
	// granted lease (a third of it, floor 50ms).
	Interval time.Duration
	// Logger receives lifecycle events; nil means log.Default().
	Logger *log.Logger
}

// NewRegistrar builds a Registrar on the shared keep-alive transport.
func NewRegistrar(cfg RegistrarConfig) *Registrar {
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	base := cfg.Coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := NewPooled(base, 10*time.Second)
	c.ClusterToken = cfg.Token
	return &Registrar{cfg: cfg, c: c}
}

// Run registers the worker and heartbeats until ctx is cancelled, then
// deregisters (under a fresh short-lived context, since ctx is already
// dead) so the coordinator drops the member without waiting for the lease
// to lapse. Registration failures are retried with backoff; heartbeat 404s
// trigger re-registration. Run only returns when ctx ends.
func (r *Registrar) Run(ctx context.Context) {
	lease, ok := r.register(ctx)
	for ok && r.heartbeatLoop(ctx, lease) {
		// The coordinator forgot us (its restart or our missed lease);
		// enroll again and resume heartbeating.
		lease, ok = r.register(ctx)
	}
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	if err := r.c.Deregister(dctx, r.cfg.Advertise); err != nil {
		r.cfg.Logger.Printf("irserved: deregister from %s: %v", r.cfg.Coordinator, err)
		return
	}
	r.cfg.Logger.Printf("irserved: deregistered %s from %s", r.cfg.Advertise, r.cfg.Coordinator)
}

// register enrolls the worker, retrying with capped backoff until it
// succeeds (returning the granted lease) or ctx ends (returning ok=false).
func (r *Registrar) register(ctx context.Context) (time.Duration, bool) {
	backoff := 100 * time.Millisecond
	for {
		resp, err := r.c.Register(ctx, server.RegisterRequest{
			Addr:    r.cfg.Advertise,
			Version: r.cfg.Version,
		})
		if err == nil {
			lease := time.Duration(resp.LeaseMs) * time.Millisecond
			r.cfg.Logger.Printf("irserved: registered %s with %s (lease %v)",
				r.cfg.Advertise, r.cfg.Coordinator, lease)
			return lease, true
		}
		if ctx.Err() != nil {
			return 0, false
		}
		r.cfg.Logger.Printf("irserved: register with %s: %v (retrying in %v)",
			r.cfg.Coordinator, err, backoff)
		select {
		case <-ctx.Done():
			return 0, false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// heartbeatLoop renews the lease until ctx ends (returning false) or the
// coordinator answers 404 (returning true: the caller should re-register).
// Transient errors are tolerated; the next tick retries well inside the
// lease.
func (r *Registrar) heartbeatLoop(ctx context.Context, lease time.Duration) bool {
	interval := r.cfg.Interval
	if interval <= 0 {
		interval = lease / 3
	}
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		_, err := r.c.Heartbeat(ctx, r.cfg.Advertise)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			r.cfg.Logger.Printf("irserved: coordinator %s dropped our lease, re-registering", r.cfg.Coordinator)
			return true
		}
		if err != nil && ctx.Err() == nil {
			r.cfg.Logger.Printf("irserved: heartbeat to %s: %v", r.cfg.Coordinator, err)
		}
	}
}
