package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"indexedrec/internal/server"
)

// Streaming-session wrappers: OpenSession starts an incremental solve,
// Append folds more iterations into it (returning the written cells'
// updated values), GetSession snapshots the full state, CloseSession ends
// it. Session IDs are only valid against the server (or coordinator) that
// issued them.

// doMethod is do generalized over the HTTP method; DELETE and GET session
// calls need it. A nil reqBody sends no payload; a nil out discards the
// response body (2xx only).
func (c *Client) doMethod(ctx context.Context, method, path string, reqBody, out any) error {
	var rd io.Reader
	if reqBody != nil {
		payload, err := json.Marshal(reqBody)
		if err != nil {
			return fmt.Errorf("irserved client: encoding request: %w", err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(server.TenantHeader, c.Tenant)
	}
	if c.ClusterToken != "" {
		req.Header.Set(server.ClusterTokenHeader, c.ClusterToken)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("irserved client: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(ra) * time.Second
		}
		var er server.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
		} else {
			apiErr.Message = string(body)
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("irserved client: decoding response: %w", err)
	}
	return nil
}

// OpenSession starts a streaming session on the server.
func (c *Client) OpenSession(ctx context.Context, req server.SessionOpenRequest) (*server.SessionOpenResponse, error) {
	var out server.SessionOpenResponse
	if err := c.do(ctx, server.SessionPrefix, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Append folds a batch of iterations into a session and returns the
// updated values of the cells the batch wrote.
func (c *Client) Append(ctx context.Context, id string, req server.SessionAppendRequest) (*server.SessionAppendResponse, error) {
	var out server.SessionAppendResponse
	if err := c.do(ctx, server.SessionPrefix+"/"+id+"/append", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetSession snapshots a session's full current state.
func (c *Client) GetSession(ctx context.Context, id string) (*server.SessionStateResponse, error) {
	var out server.SessionStateResponse
	if err := c.doMethod(ctx, http.MethodGet, server.SessionPrefix+"/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CloseSession ends a session; appends after this answer 404.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.doMethod(ctx, http.MethodDelete, server.SessionPrefix+"/"+id, nil, nil)
}
