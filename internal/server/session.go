package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/session"
	"indexedrec/ir"
)

// Streaming-session endpoints: POST /v1/session opens a live incremental
// solve from an initial system, POST /v1/session/{id}/append folds more
// iterations into it and returns the updated suffix values, GET
// /v1/session/{id} snapshots the full state, DELETE closes it. Sessions
// idle past Config.SessionTTL are evicted; the store is byte-accounted
// against Config.SessionBytes. See internal/session for the state model
// and DESIGN.md §13 for the service contract.

// SessionPrefix is the streaming-session API prefix.
const SessionPrefix = "/v1/session"

// SessionOpenRequest is the body of POST /v1/session. Family selects the
// shape: "ordinary"/"general"/"auto" use System/Op/Mod/Init (exactly like
// the one-shot solve endpoints), "linear"/"moebius" use M/G/F and the
// coefficient arrays (as /v1/solve/linear and /v1/solve/moebius do). The
// initial system may have zero iterations — a session opened empty and fed
// purely by appends.
type SessionOpenRequest struct {
	// Family is "ordinary", "general", "auto", "linear" or "moebius".
	Family string `json:"family"`
	// System, Op, Mod, Init describe an ordinary/general prefix.
	System ir.SystemWire   `json:"system,omitempty"`
	Op     string          `json:"op,omitempty"`
	Mod    int64           `json:"mod,omitempty"`
	Init   json.RawMessage `json:"init,omitempty"`
	// M, G, F, A, B, C, D, X0 describe a linear/Möbius prefix; nil C and D
	// select the affine form, Extended the X[g] += a·X[f] + b rewriting.
	M        int       `json:"m,omitempty"`
	G        []int     `json:"g,omitempty"`
	F        []int     `json:"f,omitempty"`
	A        []float64 `json:"a,omitempty"`
	B        []float64 `json:"b,omitempty"`
	C        []float64 `json:"c,omitempty"`
	D        []float64 `json:"d,omitempty"`
	X0       []float64 `json:"x0,omitempty"`
	Extended bool      `json:"extended,omitempty"`
	// Opts carries procs/deadline options for the opening fold and plan
	// compile.
	Opts ir.OptionsWire `json:"opts,omitempty"`
}

// SessionOpenResponse acknowledges an open with the session's identity.
type SessionOpenResponse struct {
	// ID addresses the session on the append/get/delete endpoints.
	ID string `json:"id"`
	// Family is the resolved solver family.
	Family string `json:"family"`
	// N and M echo the opened system's shape.
	N int `json:"n"`
	M int `json:"m"`
	// Fingerprint is the opened structure's plan fingerprint (the cluster's
	// pinning key).
	Fingerprint string `json:"fingerprint"`
	// ElapsedMs is the server-side open cost (fold + plan compile).
	ElapsedMs float64 `json:"elapsed_ms"`
}

// SessionAppendRequest is the body of POST /v1/session/{id}/append: k more
// iterations in the session's family shape. Ordinary/general sessions use
// G, F (and H for general); linear/Möbius sessions use G, F and the
// coefficient rows (nil C/D = affine; an extended session rewrites B
// itself).
type SessionAppendRequest struct {
	G []int     `json:"g"`
	F []int     `json:"f"`
	H []int     `json:"h,omitempty"`
	A []float64 `json:"a,omitempty"`
	B []float64 `json:"b,omitempty"`
	C []float64 `json:"c,omitempty"`
	D []float64 `json:"d,omitempty"`
	// Opts carries the per-append deadline (timeout_ms), mapped exactly
	// like the solve endpoints' deadlines.
	Opts ir.OptionsWire `json:"opts,omitempty"`
}

// SessionAppendResponse reports an applied append: the updated values of
// the cells the batch wrote (aligned with the request's G), the
// concatenated iteration count, and the session's append counter.
type SessionAppendResponse struct {
	N       int   `json:"n"`
	Appends int64 `json:"appends"`
	// Exactly one of the value slices is set, matching the session domain.
	ValuesInt   []int64   `json:"values_int,omitempty"`
	ValuesFloat []float64 `json:"values_float,omitempty"`
	Values      []float64 `json:"values,omitempty"`
	ElapsedMs   float64   `json:"elapsed_ms"`
}

// SessionStateResponse is the body of GET /v1/session/{id}: the full
// current state.
type SessionStateResponse struct {
	ID          string `json:"id"`
	Family      string `json:"family"`
	M           int    `json:"m"`
	N           int    `json:"n"`
	Appends     int64  `json:"appends"`
	Fingerprint string `json:"fingerprint"`
	// Exactly one of the value slices is set, matching the session domain.
	ValuesInt   []int64   `json:"values_int,omitempty"`
	ValuesFloat []float64 `json:"values_float,omitempty"`
	Values      []float64 `json:"values,omitempty"`
}

// sessionRoutes mounts the streaming-session endpoints.
func (s *Server) sessionRoutes() {
	s.mux.HandleFunc("POST "+SessionPrefix, func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, "session_open", s.execSessionOpen)
	})
	s.mux.HandleFunc("POST "+SessionPrefix+"/{id}/append", s.handleSessionAppend)
	s.mux.HandleFunc("GET "+SessionPrefix+"/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE "+SessionPrefix+"/{id}", s.handleSessionDelete)
}

// execSessionOpen validates an open request and returns the pool job that
// seeds the session (sequential fold of the prefix + plan compile) and
// admits it into the store.
func (s *Server) execSessionOpen(body []byte) (func(ctx context.Context) (any, error), error) {
	var req SessionOpenRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	spec, err := s.sessionSpec(&req)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		// Resolve the base plan through the plan cache when one is
		// configured; the session keeps its own reference, so later cache
		// eviction cannot invalidate it.
		if s.plans != nil {
			var fp string
			var compile func(context.Context) (*ir.Plan, error)
			if spec.Family == ir.FamilyMoebius {
				fp = ir.PlanFingerprint(ir.FamilyMoebius, len(spec.G), spec.M, spec.G, spec.F, nil, 0)
				compile = func(cctx context.Context) (*ir.Plan, error) {
					return ir.CompileMoebiusCtx(cctx, spec.M, spec.G, spec.F)
				}
			} else {
				fam := spec.Family
				if fam == ir.FamilyAuto {
					if spec.System.Ordinary() && spec.System.GDistinct() {
						fam = ir.FamilyOrdinary
					} else {
						fam = ir.FamilyGeneral
					}
				}
				// Key exactly as the session's own fingerprint (and the
				// one-shot solve paths) do: ordinary drops H and the
				// exponent bits from the key.
				if fam == ir.FamilyOrdinary {
					fp = ir.PlanFingerprint(fam, spec.System.N, spec.System.M,
						spec.System.G, spec.System.F, nil, 0)
				} else {
					fp = ir.PlanFingerprint(fam, spec.System.N, spec.System.M,
						spec.System.G, spec.System.F, spec.System.H, spec.MaxExponentBits)
				}
				compile = func(cctx context.Context) (*ir.Plan, error) {
					return ir.CompileCtx(cctx, spec.System, ir.CompileOptions{
						Family: fam, Procs: spec.Opts.Procs, MaxExponentBits: spec.MaxExponentBits,
					})
				}
			}
			if p, err := PlanFor(s.plans, ctx, fp, compile); err == nil {
				spec.Plan = p
			}
		}
		sess, err := session.Open(ctx, *spec)
		if err != nil {
			return nil, err
		}
		id, err := s.sessions.Put(sess)
		if err != nil {
			return nil, err
		}
		return SessionOpenResponse{
			ID:          id,
			Family:      sess.Family().String(),
			N:           sess.N(),
			M:           sess.M(),
			Fingerprint: sess.Fingerprint(),
			ElapsedMs:   ms(start),
		}, nil
	}, nil
}

// sessionSpec converts a wire open request into a session.Spec, applying
// server limits.
func (s *Server) sessionSpec(req *SessionOpenRequest) (*session.Spec, error) {
	spec := &session.Spec{
		MaxN:            s.cfg.MaxN,
		MaxExponentBits: s.cfg.MaxExponentBits,
	}
	opts, err := req.Opts.Options()
	if err != nil {
		return nil, err
	}
	opts.Procs = s.clampProcs(opts.Procs)
	spec.Opts = opts
	switch strings.ToLower(req.Family) {
	case "linear", "moebius":
		if len(req.G) > s.cfg.MaxN {
			return nil, fmt.Errorf("n = %d exceeds the server limit %d", len(req.G), s.cfg.MaxN)
		}
		spec.Family = ir.FamilyMoebius
		spec.M, spec.G, spec.F = req.M, req.G, req.F
		spec.A, spec.B, spec.C, spec.D = req.A, req.B, req.C, req.D
		spec.X0 = req.X0
		if req.Extended {
			if len(req.X0) != req.M {
				return nil, fmt.Errorf("extended form: len(x0) = %d, want m = %d", len(req.X0), req.M)
			}
			b2 := make([]float64, len(req.B))
			for i := range b2 {
				if req.G[i] < 0 || req.G[i] >= req.M {
					return nil, fmt.Errorf("g[%d] = %d out of range [0,%d)", i, req.G[i], req.M)
				}
				b2[i] = req.X0[req.G[i]] + req.B[i]
			}
			spec.B = b2
		}
	case "ordinary", "general", "auto", "":
		switch strings.ToLower(req.Family) {
		case "ordinary":
			spec.Family = ir.FamilyOrdinary
		case "general":
			spec.Family = ir.FamilyGeneral
		default:
			spec.Family = ir.FamilyAuto
		}
		if req.System.N > s.cfg.MaxN || len(req.System.G) > s.cfg.MaxN {
			return nil, fmt.Errorf("n = %d exceeds the server limit %d",
				max(req.System.N, len(req.System.G)), s.cfg.MaxN)
		}
		sys, err := req.System.System()
		if err != nil {
			return nil, err
		}
		spec.System = sys
		spec.Op, spec.Mod = req.Op, req.Mod
		iop, err := intOp(req.Op, req.Mod)
		if err != nil {
			return nil, err
		}
		if iop != nil {
			if spec.InitInt, err = DecodeInitInt(req.Init); err != nil {
				return nil, err
			}
		} else {
			fop, err := floatOp(req.Op)
			if err != nil {
				return nil, err
			}
			if fop == nil {
				return nil, fmt.Errorf("unknown op %q (one of %s)", req.Op, strings.Join(OpNames(), ", "))
			}
			if spec.InitFloat, err = DecodeInitFloat(req.Init); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown family %q (one of ordinary, general, auto, linear, moebius)", req.Family)
	}
	return spec, nil
}

// handleSessionAppend folds a batch into a live session. It mirrors
// handleSolve's admission shape (draining gate, pool submission, deadline
// mapping) with two session-specific twists: an oversized body answers 413
// (the append stream is the one place clients naturally grow payloads into
// the limit) and an unknown or closed session answers 404.
func (s *Server) handleSessionAppend(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session_append"
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.metrics.inflight.Inc()
	defer s.metrics.inflight.Dec()
	start := time.Now()
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.writeError(w, endpoint, http.StatusServiceUnavailable, "draining")
		return
	}
	body, werr := s.readBody(w, r)
	if werr != nil {
		code := http.StatusBadRequest
		if strings.Contains(werr.Error(), "exceeds") {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, endpoint, code, werr.Error())
		return
	}
	id := r.PathValue("id")
	sess, err := s.sessions.Get(id)
	if err != nil {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	var req SessionAppendRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	ctx, cancel := s.requestContext(r, req.Opts.TimeoutMs)
	defer cancel()

	type outcome struct {
		res *session.Result
		err error
	}
	resCh := make(chan outcome, 1)
	j := &job{ctx: ctx, tenant: tenantOf(r), run: func(jctx context.Context) {
		if err := jctx.Err(); err != nil {
			resCh <- outcome{err: err}
			return
		}
		if s.testHook != nil {
			s.testHook()
		}
		res, err := sess.Append(jctx, session.Batch{
			G: req.G, F: req.F, H: req.H,
			A: req.A, B: req.B, C: req.C, D: req.D,
		})
		resCh <- outcome{res: res, err: err}
	}}
	j.shed = func() { resCh <- outcome{err: errShed} }
	if err := s.pool.submit(j); err != nil {
		s.refuse(w, endpoint, err)
		return
	}
	select {
	case out := <-resCh:
		s.metrics.sessionAppendLatency.Observe(time.Since(start).Seconds())
		if errors.Is(out.err, errShed) {
			s.refuse(w, endpoint, out.err)
			return
		}
		if out.err != nil {
			s.writeError(w, endpoint, statusForSession(out.err), out.err.Error())
			return
		}
		s.sessions.Touch(id)
		s.metrics.sessionAppends.Inc()
		s.writeJSON(w, endpoint, http.StatusOK, SessionAppendResponse{
			N:           out.res.N,
			Appends:     sess.Appends(),
			ValuesInt:   out.res.ValuesInt,
			ValuesFloat: out.res.ValuesFloat,
			Values:      out.res.Values,
			ElapsedMs:   ms(start),
		})
	case <-ctx.Done():
		s.metrics.sessionAppendLatency.Observe(time.Since(start).Seconds())
		s.writeError(w, endpoint, statusForSolve(ctx.Err()), ctx.Err().Error())
	}
}

// handleSessionGet snapshots a session's full state. Read-only, so it
// bypasses the admission pool and stays available during drain.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session_get"
	id := r.PathValue("id")
	sess, err := s.sessions.Get(id)
	if err != nil {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	vi, vf, vm := sess.Values()
	s.writeJSON(w, endpoint, http.StatusOK, SessionStateResponse{
		ID:          id,
		Family:      sess.Family().String(),
		M:           sess.M(),
		N:           sess.N(),
		Appends:     sess.Appends(),
		Fingerprint: sess.Fingerprint(),
		ValuesInt:   vi,
		ValuesFloat: vf,
		Values:      vm,
	})
}

// handleSessionDelete closes and removes a session; 204 on success, 404
// for unknown IDs.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session_delete"
	id := r.PathValue("id")
	if err := s.sessions.Delete(id); err != nil {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
	s.metrics.requests.Inc(endpoint, "204")
}

// statusForSession maps session-append errors to HTTP statuses: a closed
// or evicted session reads as gone (404, matching the post-delete view),
// the iteration bound and validation failures are client errors, and
// everything else follows the solve mapping.
func statusForSession(err error) int {
	switch {
	case errors.Is(err, session.ErrClosed), errors.Is(err, session.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, session.ErrLimit), errors.Is(err, ordinary.ErrGNotDistinct),
		errors.Is(err, moebius.ErrInitLen):
		return http.StatusBadRequest
	case errors.Is(err, session.ErrStoreFull):
		return http.StatusInsufficientStorage
	default:
		return statusForSolve(err)
	}
}
