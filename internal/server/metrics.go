package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Hand-rolled Prometheus instrumentation: counters, gauges and histograms
// rendered in the text exposition format (version 0.0.4), with no external
// dependencies. The set is deliberately small — exactly what the service
// needs — but the exposition is spec-compliant so any Prometheus scraper or
// promtool check can consume /metrics.

// Registry holds metric families in registration order.
type Registry struct {
	mu       sync.Mutex
	families []family
}

type family interface {
	name() string
	help() string
	typ() string
	// samples appends exposition lines (without HELP/TYPE headers) to b.
	samples(b *strings.Builder)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families = append(r.families, f)
}

// WriteTo renders every registered family in the text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name(), f.help())
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name(), f.typ())
		f.samples(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// formatValue renders a float the way Prometheus expects (no exponent for
// integers, +Inf/-Inf/NaN spelled out).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// labelString renders {k1="v1",k2="v2"} with keys sorted, or "" for none.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing counter.
type Counter struct {
	fname, fhelp string
	v            atomic.Int64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{fname: name, fhelp: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (must be >= 0 to keep the counter monotone).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.fname }
func (c *Counter) help() string { return c.fhelp }
func (c *Counter) typ() string  { return "counter" }
func (c *Counter) samples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", c.fname, c.v.Load())
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	fname, fhelp string
	labelNames   []string
	mu           sync.Mutex
	children     map[string]*vecChild
}

type vecChild struct {
	labels map[string]string
	v      atomic.Int64
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{
		fname:      name,
		fhelp:      help,
		labelNames: labelNames,
		children:   make(map[string]*vecChild),
	}
	r.register(cv)
	return cv
}

func (cv *CounterVec) child(labelValues ...string) *vecChild {
	if len(labelValues) != len(cv.labelNames) {
		panic(fmt.Sprintf("metrics: %s: got %d label values, want %d",
			cv.fname, len(labelValues), len(cv.labelNames)))
	}
	key := strings.Join(labelValues, "\x00")
	cv.mu.Lock()
	defer cv.mu.Unlock()
	ch, ok := cv.children[key]
	if !ok {
		labels := make(map[string]string, len(cv.labelNames))
		for i, n := range cv.labelNames {
			labels[n] = labelValues[i]
		}
		ch = &vecChild{labels: labels}
		cv.children[key] = ch
	}
	return ch
}

// Inc adds one to the child with the given label values.
func (cv *CounterVec) Inc(labelValues ...string) { cv.child(labelValues...).v.Add(1) }

// Value returns the current count for the given label values.
func (cv *CounterVec) Value(labelValues ...string) int64 { return cv.child(labelValues...).v.Load() }

func (cv *CounterVec) name() string { return cv.fname }
func (cv *CounterVec) help() string { return cv.fhelp }
func (cv *CounterVec) typ() string  { return "counter" }
func (cv *CounterVec) samples(b *strings.Builder) {
	cv.mu.Lock()
	keys := make([]string, 0, len(cv.children))
	for k := range cv.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*vecChild, len(keys))
	for i, k := range keys {
		children[i] = cv.children[k]
	}
	cv.mu.Unlock()
	for _, ch := range children {
		fmt.Fprintf(b, "%s%s %d\n", cv.fname, labelString(ch.labels), ch.v.Load())
	}
}

// GaugeVec is a gauge family keyed by label values (the coordinator's
// ircluster_worker_up{worker="..."}).
type GaugeVec struct {
	fname, fhelp string
	labelNames   []string
	mu           sync.Mutex
	children     map[string]*vecChild
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	gv := &GaugeVec{
		fname:      name,
		fhelp:      help,
		labelNames: labelNames,
		children:   make(map[string]*vecChild),
	}
	r.register(gv)
	return gv
}

func (gv *GaugeVec) child(labelValues ...string) *vecChild {
	if len(labelValues) != len(gv.labelNames) {
		panic(fmt.Sprintf("metrics: %s: got %d label values, want %d",
			gv.fname, len(labelValues), len(gv.labelNames)))
	}
	key := strings.Join(labelValues, "\x00")
	gv.mu.Lock()
	defer gv.mu.Unlock()
	ch, ok := gv.children[key]
	if !ok {
		labels := make(map[string]string, len(gv.labelNames))
		for i, n := range gv.labelNames {
			labels[n] = labelValues[i]
		}
		ch = &vecChild{labels: labels}
		gv.children[key] = ch
	}
	return ch
}

// Set stores v for the child with the given label values.
func (gv *GaugeVec) Set(v int64, labelValues ...string) { gv.child(labelValues...).v.Store(v) }

// Value returns the stored value for the given label values.
func (gv *GaugeVec) Value(labelValues ...string) int64 { return gv.child(labelValues...).v.Load() }

func (gv *GaugeVec) name() string { return gv.fname }
func (gv *GaugeVec) help() string { return gv.fhelp }
func (gv *GaugeVec) typ() string  { return "gauge" }
func (gv *GaugeVec) samples(b *strings.Builder) {
	gv.mu.Lock()
	keys := make([]string, 0, len(gv.children))
	for k := range gv.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*vecChild, len(keys))
	for i, k := range keys {
		children[i] = gv.children[k]
	}
	gv.mu.Unlock()
	for _, ch := range children {
		fmt.Fprintf(b, "%s%s %d\n", gv.fname, labelString(ch.labels), ch.v.Load())
	}
}

// Gauge is a settable value; an optional Func overrides the stored value at
// scrape time (used for live readings like queue depth).
type Gauge struct {
	fname, fhelp string
	v            atomic.Int64
	fn           func() float64
}

// NewGauge registers a stored-value gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{fname: name, fhelp: help}
	r.register(g)
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *Gauge {
	g := &Gauge{fname: name, fhelp: help, fn: fn}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the gauge reading.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return float64(g.v.Load())
}

func (g *Gauge) name() string { return g.fname }
func (g *Gauge) help() string { return g.fhelp }
func (g *Gauge) typ() string  { return "gauge" }
func (g *Gauge) samples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.fname, formatValue(g.Value()))
}

// Histogram is a fixed-bucket histogram with cumulative bucket semantics.
type Histogram struct {
	fname, fhelp string
	bounds       []float64 // upper bounds, ascending; +Inf implicit
	mu           sync.Mutex
	counts       []int64 // per-bucket (non-cumulative) counts, len(bounds)+1
	sum          float64
	total        int64
}

// NewHistogram registers a histogram with the given ascending upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: bucket bounds not ascending", name))
		}
	}
	h := &Histogram{
		fname:  name,
		fhelp:  help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// MaxObservedBound returns the smallest upper bound covering every
// observation so far (+Inf if any observation exceeded the last bound, 0 if
// none). Tests use it to assert batch-size distributions.
func (h *Histogram) MaxObservedBound() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			if i == len(h.bounds) {
				return math.Inf(1)
			}
			return h.bounds[i]
		}
	}
	return 0
}

// HistogramVec is a histogram family keyed by label values, sharing one set
// of bucket bounds.
type HistogramVec struct {
	fname, fhelp string
	labelNames   []string
	bounds       []float64
	mu           sync.Mutex
	children     map[string]*Histogram
	order        []string
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	hv := &HistogramVec{
		fname:      name,
		fhelp:      help,
		labelNames: labelNames,
		bounds:     append([]float64(nil), bounds...),
		children:   make(map[string]*Histogram),
	}
	r.register(hv)
	return hv
}

// With returns the child histogram for the given label values, creating it
// on first use. Children are NOT individually registered; the vec renders
// them under one family header.
func (hv *HistogramVec) With(labelValues ...string) *Histogram {
	if len(labelValues) != len(hv.labelNames) {
		panic(fmt.Sprintf("metrics: %s: got %d label values, want %d",
			hv.fname, len(labelValues), len(hv.labelNames)))
	}
	key := strings.Join(labelValues, "\x00")
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h, ok := hv.children[key]
	if !ok {
		h = &Histogram{
			fname:  hv.fname,
			bounds: append([]float64(nil), hv.bounds...),
			counts: make([]int64, len(hv.bounds)+1),
		}
		hv.children[key] = h
		hv.order = append(hv.order, key)
		sort.Strings(hv.order)
	}
	return h
}

func (hv *HistogramVec) name() string { return hv.fname }
func (hv *HistogramVec) help() string { return hv.fhelp }
func (hv *HistogramVec) typ() string  { return "histogram" }
func (hv *HistogramVec) samples(b *strings.Builder) {
	hv.mu.Lock()
	order := append([]string(nil), hv.order...)
	hv.mu.Unlock()
	for _, key := range order {
		hv.mu.Lock()
		h := hv.children[key]
		hv.mu.Unlock()
		vals := strings.Split(key, "\x00")
		labels := make(map[string]string, len(hv.labelNames)+1)
		for i, n := range hv.labelNames {
			labels[n] = vals[i]
		}
		h.mu.Lock()
		counts := append([]int64(nil), h.counts...)
		sum, total := h.sum, h.total
		h.mu.Unlock()
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += counts[i]
			labels["le"] = formatValue(bound)
			fmt.Fprintf(b, "%s_bucket%s %d\n", hv.fname, labelString(labels), cum)
		}
		labels["le"] = "+Inf"
		fmt.Fprintf(b, "%s_bucket%s %d\n", hv.fname, labelString(labels), total)
		delete(labels, "le")
		fmt.Fprintf(b, "%s_sum%s %s\n", hv.fname, labelString(labels), formatValue(sum))
		fmt.Fprintf(b, "%s_count%s %d\n", hv.fname, labelString(labels), total)
	}
}

func (h *Histogram) name() string { return h.fname }
func (h *Histogram) help() string { return h.fhelp }
func (h *Histogram) typ() string  { return "histogram" }
func (h *Histogram) samples(b *strings.Builder) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.fname, formatValue(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.fname, total)
	fmt.Fprintf(b, "%s_sum %s\n", h.fname, formatValue(sum))
	fmt.Fprintf(b, "%s_count %d\n", h.fname, total)
}
