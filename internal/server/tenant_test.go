package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// Per-tenant admission tests: MaxQueued quotas, priority eviction of queued
// work, WFQ dequeue ordering, and the irserved_tenant_shed_total metric.

// postTenant is post with an X-IR-Tenant header.
func postTenant(t *testing.T, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// ordinaryChainReq is a small always-valid solve request body.
func ordinaryChainReq() OrdinaryRequest {
	return OrdinaryRequest{
		System: systemWireChain(8),
		Op:     "int64-add",
		Init:   json.RawMessage(`[1,1,1,1,1,1,1,1,1]`),
	}
}

// waitDepth polls the pool until it holds exactly n queued jobs.
func waitDepth(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, s.pool.depth())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTenantQuotaSheds bounds one tenant to a single queued job: with the
// lone worker held busy and one job queued, the tenant's next request is
// shed with 429 — while the global queue still has room — and the shed is
// attributed to the tenant in irserved_tenant_shed_total.
func TestTenantQuotaSheds(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s, ts, down := newTestServer(t, Config{
			Workers:    1,
			QueueDepth: 8,
			Tenants:    map[string]TenantConfig{"free": {MaxQueued: 1}},
		})
		defer down()
		hold := make(chan struct{})
		running := make(chan struct{}, 8)
		var once sync.Once
		s.testHook = func() {
			running <- struct{}{}
			<-hold
		}
		defer once.Do(func() { close(hold) })

		// Request 1 occupies the worker; request 2 fills the tenant's quota
		// of one queued job.
		url := ts.URL + APIPrefix + "ordinary"
		type reply struct {
			code int
			body []byte
		}
		replies := make(chan reply, 2)
		for i := 0; i < 2; i++ {
			go func() {
				resp, body := postTenant(t, url, "free", ordinaryChainReq())
				replies <- reply{resp.StatusCode, body}
			}()
			if i == 0 {
				<-running // the first request is on the worker, not queued
			} else {
				waitDepth(t, s, 1)
			}
		}

		// The third request exceeds MaxQueued and sheds even though the
		// global queue (depth 8) is nearly empty.
		resp, body := postTenant(t, url, "free", ordinaryChainReq())
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-quota request: HTTP %d (%s), want 429", resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "tenant") {
			t.Fatalf("shed body does not name the tenant quota: %s", body)
		}
		if got := s.metrics.tenantShed.Value("free"); got != 1 {
			t.Fatalf("irserved_tenant_shed_total{tenant=free} = %d, want 1", got)
		}

		// A different tenant is not affected by free's quota.
		done := make(chan reply, 1)
		go func() {
			resp, body := postTenant(t, url, "paid", ordinaryChainReq())
			done <- reply{resp.StatusCode, body}
		}()
		waitDepth(t, s, 2)

		once.Do(func() { close(hold) })
		for i := 0; i < 2; i++ {
			if r := <-replies; r.code != http.StatusOK {
				t.Fatalf("queued free request: HTTP %d (%s)", r.code, r.body)
			}
		}
		if r := <-done; r.code != http.StatusOK {
			t.Fatalf("paid request: HTTP %d (%s)", r.code, r.body)
		}

		// The tenant shed metric flows through valid exposition.
		mresp, mbody := get(t, ts.URL+"/metrics")
		if mresp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: HTTP %d", mresp.StatusCode)
		}
		checkExposition(t, string(mbody))
		if !strings.Contains(string(mbody), `irserved_tenant_shed_total{tenant="free"} 1`) {
			t.Fatalf("metrics page missing the tenant shed sample:\n%s", mbody)
		}
	}()
	leak()
}

// get is a small GET helper mirroring post.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestTenantPriorityEviction fills a depth-1 queue with a low-priority job
// and submits a high-priority request: the high tenant must evict the
// queued low job (which answers 429) and take its slot, instead of being
// refused itself. Equal-priority tenants never evict each other.
func TestTenantPriorityEviction(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s, ts, down := newTestServer(t, Config{
			Workers:    1,
			QueueDepth: 1,
			Tenants: map[string]TenantConfig{
				"low":  {Priority: 0},
				"high": {Priority: 10},
			},
		})
		defer down()
		hold := make(chan struct{})
		running := make(chan struct{}, 8)
		var once sync.Once
		s.testHook = func() {
			running <- struct{}{}
			<-hold
		}
		defer once.Do(func() { close(hold) })

		url := ts.URL + APIPrefix + "ordinary"
		type reply struct {
			code int
			body []byte
		}

		// Low request 1 occupies the worker; low request 2 fills the queue.
		first := make(chan reply, 1)
		go func() {
			resp, body := postTenant(t, url, "low", ordinaryChainReq())
			first <- reply{resp.StatusCode, body}
		}()
		<-running
		queued := make(chan reply, 1)
		go func() {
			resp, body := postTenant(t, url, "low", ordinaryChainReq())
			queued <- reply{resp.StatusCode, body}
		}()
		waitDepth(t, s, 1)

		// Another low request cannot evict its own tenant: equal priorities
		// shed the submitter, not the queue.
		resp, body := postTenant(t, url, "low", ordinaryChainReq())
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("equal-priority overflow: HTTP %d (%s), want 429", resp.StatusCode, body)
		}
		select {
		case r := <-queued:
			t.Fatalf("equal-priority submit evicted a peer: HTTP %d (%s)", r.code, r.body)
		default:
		}

		// The high-priority request takes the slot; the queued low job is
		// the one that answers 429.
		highDone := make(chan reply, 1)
		go func() {
			resp, body := postTenant(t, url, "high", ordinaryChainReq())
			highDone <- reply{resp.StatusCode, body}
		}()
		var evicted reply
		select {
		case evicted = <-queued:
		case <-time.After(5 * time.Second):
			t.Fatal("queued low job was never evicted by the high-priority submit")
		}
		if evicted.code != http.StatusTooManyRequests {
			t.Fatalf("evicted job: HTTP %d (%s), want 429", evicted.code, evicted.body)
		}
		if got := s.metrics.tenantShed.Value("low"); got < 2 {
			t.Fatalf("irserved_tenant_shed_total{tenant=low} = %d, want >= 2 (overflow + eviction)", got)
		}
		if got := s.metrics.tenantShed.Value("high"); got != 0 {
			t.Fatalf("irserved_tenant_shed_total{tenant=high} = %d, want 0", got)
		}

		// Release the worker: the original low solve and the high solve both
		// finish normally.
		once.Do(func() { close(hold) })
		if r := <-first; r.code != http.StatusOK {
			t.Fatalf("first low request: HTTP %d (%s)", r.code, r.body)
		}
		if r := <-highDone; r.code != http.StatusOK {
			t.Fatalf("high request: HTTP %d (%s)", r.code, r.body)
		}
	}()
	leak()
}

// TestTenantQueueGC drives the pool directly and asserts the tenants map
// stays bounded under arbitrary tenant names: a shed submission never
// leaves its just-created queue behind, a drained tenant's queue is
// dropped after dequeue, and a released reservation drops its queue — so a
// client inventing X-IR-Tenant values cannot grow pool memory (or dequeue
// scan cost) without bound.
func TestTenantQueueGC(t *testing.T) {
	p := newPool(1, 1, 1, map[string]TenantConfig{"cfgd": {Weight: 2}}, nil)

	tenantCount := func() int {
		p.mu.Lock()
		defer p.mu.Unlock()
		return len(p.tenants)
	}

	// A blocker occupies the worker so later submissions queue.
	started := make(chan struct{})
	release := make(chan struct{})
	if err := p.submit(&job{ctx: context.Background(), tenant: "blocker", run: func(context.Context) {
		close(started)
		<-release
	}}); err != nil {
		t.Fatal(err)
	}
	<-started

	// One queued job fills the global queue (depth 1).
	done := make(chan struct{})
	if err := p.submit(&job{ctx: context.Background(), tenant: "cfgd", run: func(context.Context) {
		close(done)
	}}); err != nil {
		t.Fatal(err)
	}

	// 100 distinct shed tenants must leave no trace: only the queued
	// tenant's FIFO may remain (the dequeued blocker's is already gone).
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("attacker-%d", i)
		err := p.submit(&job{ctx: context.Background(), tenant: name, run: func(context.Context) {}})
		if !errors.Is(err, errShed) {
			t.Fatalf("submit %s: %v, want errShed", name, err)
		}
	}
	if got := tenantCount(); got != 1 {
		t.Fatalf("tenants after 100 shed names = %d, want 1 (the queued tenant)", got)
	}

	// Draining the queue drops the last FIFO.
	close(release)
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for tenantCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tenants after drain = %d, want 0", tenantCount())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A coalescer reservation pins its queue only while held.
	if err := p.reserve("batcher"); err != nil {
		t.Fatal(err)
	}
	if got := tenantCount(); got != 1 {
		t.Fatalf("tenants during a reservation = %d, want 1", got)
	}
	p.release("batcher")
	if got := tenantCount(); got != 0 {
		t.Fatalf("tenants after release = %d, want 0", got)
	}

	p.close()
}

// TestWFQOrdering drives the pool directly: with a weight-3 and a weight-1
// tenant each queueing three jobs behind a blocker, the single worker must
// drain all of the heavy tenant's jobs first — their virtual finish times
// advance by 1/3 against the light tenant's 1 — and ties break by name.
func TestWFQOrdering(t *testing.T) {
	p := newPool(1, 100, 1, map[string]TenantConfig{
		"heavy": {Weight: 3},
		"light": {Weight: 1},
	}, nil)

	// A blocker job occupies the worker while the contenders enqueue.
	started := make(chan struct{})
	release := make(chan struct{})
	err := p.submit(&job{ctx: context.Background(), tenant: "zblock", run: func(context.Context) {
		close(started)
		<-release
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	var done sync.WaitGroup
	enqueue := func(tenant string) {
		done.Add(1)
		err := p.submit(&job{ctx: context.Background(), tenant: tenant, run: func(context.Context) {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			done.Done()
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Interleave the submissions; the tags, not arrival order, must decide.
	enqueue("light")
	enqueue("heavy")
	enqueue("light")
	enqueue("heavy")
	enqueue("heavy")
	enqueue("light")

	close(release)
	done.Wait()
	p.close()

	want := []string{"heavy", "heavy", "heavy", "light", "light", "light"}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("WFQ dequeue order = %v, want %v", order, want)
		}
	}
}
