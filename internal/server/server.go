package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indexedrec/internal/moebius"
	"indexedrec/internal/parallel"
	"indexedrec/internal/session"
	"indexedrec/ir"
)

// Config tunes the service; zero values select production defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// QueueDepth bounds the admission queue; a full queue sheds load with
	// HTTP 429 (default 256).
	QueueDepth int
	// Workers is the solve worker pool size (default max(1, GOMAXPROCS/2),
	// so request-level and solver-internal parallelism share the machine).
	Workers int
	// Procs is the per-solve goroutine budget handed to the solvers
	// (default max(1, GOMAXPROCS/Workers)); client-requested procs are
	// clamped to it.
	Procs int
	// BatchWindow is how long the coalescer holds the first Möbius/linear
	// request of a batch waiting for companions (default 2ms).
	BatchWindow time.Duration
	// MaxBatch closes a batch early once this many requests coalesced
	// (default 32).
	MaxBatch int
	// DefaultTimeout bounds solves whose request didn't set timeout_ms
	// (default 30s); MaxTimeout clamps client-requested deadlines
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// MaxRequestBytes bounds request bodies (default 8 MiB); MaxN bounds
	// iterations per request (default 4,194,304).
	MaxRequestBytes int64
	MaxN            int
	// MaxExponentBits caps CAP trace-exponent growth for general solves
	// (default 16384); requests may lower it but not raise it.
	MaxExponentBits int
	// PlanCacheBytes bounds the compiled-plan LRU cache (default 64 MiB).
	// Negative disables plan caching: every request then runs the direct
	// solve paths, recomputing structure each time.
	PlanCacheBytes int64
	// Tenants configures per-tenant admission (WFQ weight, shed priority,
	// queue quota) keyed by the X-IR-Tenant header value. Tenants absent
	// from the map get the zero TenantConfig: weight 1, priority 0, no
	// quota.
	Tenants map[string]TenantConfig
	// SessionTTL evicts streaming sessions idle longer than this (default
	// 5m; negative disables idle eviction). SessionBytes bounds the summed
	// resident size of live sessions (default 256 MiB; negative disables),
	// MaxSessions their count (default 1024; negative disables).
	SessionTTL   time.Duration
	SessionBytes int64
	MaxSessions  int
}

func (c *Config) setDefaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0) / c.Workers
		if c.Procs < 1 {
			c.Procs = 1
		}
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.MaxN <= 0 {
		c.MaxN = 4 << 20
	}
	if c.MaxExponentBits <= 0 {
		c.MaxExponentBits = 16384
	}
	if c.PlanCacheBytes == 0 {
		c.PlanCacheBytes = 64 << 20
	}
}

// serverMetrics is the service's metrics contract; see DESIGN.md §8.
type serverMetrics struct {
	requests       *CounterVec   // irserved_requests_total{endpoint,code}
	shed           *CounterVec   // irserved_shed_total{endpoint}
	tenantShed     *CounterVec   // irserved_tenant_shed_total{tenant}
	queueDepth     *Gauge        // irserved_queue_depth
	queueCapacity  *Gauge        // irserved_queue_capacity
	inflight       *Gauge        // irserved_inflight_requests
	ready          *Gauge        // irserved_ready
	batches        *Counter      // irserved_batches_total
	batchSize      *Histogram    // irserved_batch_size
	batchFallbacks *Counter      // irserved_batch_fallbacks_total
	latency        *HistogramVec // irserved_solve_seconds{endpoint}
	sparseSolves   *CounterVec   // irserved_sparse_solves_total{mode}
	planHits       *Counter      // irserved_plan_cache_hits_total
	planMisses     *Counter      // irserved_plan_cache_misses_total
	planEvictions  *Counter      // irserved_plan_cache_evictions_total
	planBytes      *Gauge        // irserved_plan_cache_bytes

	sessions             *GaugeVec  // irserved_sessions{state}
	sessionAppends       *Counter   // irserved_session_appends_total
	sessionEvictions     *Counter   // irserved_session_evictions_total
	sessionBytes         *Gauge     // irserved_session_bytes
	sessionAppendLatency *Histogram // irserved_session_append_seconds
}

func newServerMetrics(reg *Registry, depthFn func() float64, capacity int) *serverMetrics {
	m := &serverMetrics{
		requests: reg.NewCounterVec("irserved_requests_total",
			"Requests by endpoint and HTTP status code.", "endpoint", "code"),
		shed: reg.NewCounterVec("irserved_shed_total",
			"Requests shed with 429 because the admission queue was full.", "endpoint"),
		tenantShed: reg.NewCounterVec("irserved_tenant_shed_total",
			"Requests shed per tenant: quota exhaustion, a full queue, or eviction by a higher-priority tenant. Unconfigured tenant names share the \"other\" label.", "tenant"),
		queueDepth: reg.NewGaugeFunc("irserved_queue_depth",
			"Jobs waiting in the admission queue right now.", depthFn),
		queueCapacity: reg.NewGauge("irserved_queue_capacity",
			"Admission queue capacity (QueueDepth)."),
		inflight: reg.NewGauge("irserved_inflight_requests",
			"Solve requests currently admitted and not yet answered."),
		ready: reg.NewGauge("irserved_ready",
			"1 while serving, 0 once draining began."),
		batches: reg.NewCounter("irserved_batches_total",
			"Coalesced Moebius/linear batches dispatched."),
		batchSize: reg.NewHistogram("irserved_batch_size",
			"Requests coalesced per dispatched batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		batchFallbacks: reg.NewCounter("irserved_batch_fallbacks_total",
			"Batches that fell back to per-item solves after a sweep error."),
		latency: reg.NewHistogramVec("irserved_solve_seconds",
			"End-to-end solve latency (admission queueing included).",
			[]float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10},
			"endpoint"),
		sparseSolves: reg.NewCounterVec("irserved_sparse_solves_total",
			"Sparse-encoded solves by execution mode: \"sparse\" replays the compact plan, \"dense-fallback\" expanded to the dense form because the sparse fast path is disabled.", "mode"),
		planHits: reg.NewCounter("irserved_plan_cache_hits_total",
			"Solves replayed from a cached compiled plan."),
		planMisses: reg.NewCounter("irserved_plan_cache_misses_total",
			"Solves that compiled a plan because none was cached."),
		planEvictions: reg.NewCounter("irserved_plan_cache_evictions_total",
			"Compiled plans evicted to respect the cache byte bound."),
		planBytes: reg.NewGauge("irserved_plan_cache_bytes",
			"Resident bytes of cached compiled plans."),
		sessions: reg.NewGaugeVec("irserved_sessions",
			"Streaming sessions by state: \"open\" counts resident sessions, \"closed\" the cumulative total that ended (deleted, drained or evicted).", "state"),
		sessionAppends: reg.NewCounter("irserved_session_appends_total",
			"Append batches folded into streaming sessions."),
		sessionEvictions: reg.NewCounter("irserved_session_evictions_total",
			"Streaming sessions evicted by the idle TTL or the byte/count bounds."),
		sessionBytes: reg.NewGauge("irserved_session_bytes",
			"Resident bytes of live streaming sessions."),
		sessionAppendLatency: reg.NewHistogram("irserved_session_append_seconds",
			"End-to-end session append latency (admission queueing included).",
			[]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}),
	}
	m.queueCapacity.Set(int64(capacity))
	m.ready.Set(1)
	return m
}

// planCacheMetrics packs the plan-cache slice of the server metrics into the
// exported form NewPlanCache accepts.
func (m *serverMetrics) planCacheMetrics() PlanCacheMetrics {
	return PlanCacheMetrics{
		Hits:      m.planHits,
		Misses:    m.planMisses,
		Evictions: m.planEvictions,
		Bytes:     m.planBytes,
	}
}

// Server is the solve service. Create with New, mount Handler (or use
// ListenAndServe), stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *serverMetrics
	pool    *pool
	co      *coalescer
	// plans caches compiled solve plans by fingerprint; nil when
	// Config.PlanCacheBytes is negative (caching disabled).
	plans *PlanCache
	// sessions owns the live streaming sessions (see internal/session);
	// sessionOpen/sessionClosed back the irserved_sessions gauge because
	// store hooks fire under the store lock and must not call back into it.
	sessions      *session.Store
	sessionOpen   atomic.Int64
	sessionClosed atomic.Int64
	mux           *http.ServeMux
	lifetime      context.Context
	cancel        context.CancelFunc
	draining      atomic.Bool
	inflight      sync.WaitGroup
	shutOnce      sync.Once

	// testHook, when non-nil, runs on the worker goroutine before each
	// non-batch solve and before each batch sweep — tests use it to hold
	// workers busy deterministically.
	testHook func()
}

// New builds a Server and starts its worker pool and coalescer.
func New(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{cfg: cfg, reg: NewRegistry()}
	s.lifetime, s.cancel = context.WithCancel(context.Background())
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, cfg.Procs, cfg.Tenants,
		func(tenant string) { s.metrics.tenantShed.Inc(s.shedLabel(tenant)) })
	s.metrics = newServerMetrics(s.reg,
		func() float64 { return float64(s.pool.depth() + len(s.co.in)) },
		cfg.QueueDepth)
	if cfg.PlanCacheBytes > 0 {
		s.plans = NewPlanCache(cfg.PlanCacheBytes, s.metrics.planCacheMetrics())
	}
	s.sessions = session.NewStore(session.StoreConfig{
		TTL:         cfg.SessionTTL,
		MaxBytes:    cfg.SessionBytes,
		MaxSessions: cfg.MaxSessions,
		Hooks: session.Hooks{
			Opened: func() { s.metrics.sessions.Set(s.sessionOpen.Add(1), "open") },
			Closed: func(evicted bool) {
				s.metrics.sessions.Set(s.sessionOpen.Add(-1), "open")
				s.metrics.sessions.Set(s.sessionClosed.Add(1), "closed")
				if evicted {
					s.metrics.sessionEvictions.Inc()
				}
			},
			Bytes: func(total int64) { s.metrics.sessionBytes.Set(total) },
		},
	})
	s.co = newCoalescer(cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow, func(items []*batchItem) {
		j := &job{ctx: s.lifetime, run: func(jctx context.Context) {
			if s.testHook != nil {
				s.testHook()
			}
			s.runBatch(jctx, items)
		}}
		if err := s.pool.submitInternal(j); err != nil {
			for _, it := range items {
				it.res <- batchResult{err: err}
			}
		}
	})
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST "+APIPrefix+"ordinary", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, "ordinary", s.execOrdinary)
	})
	s.mux.HandleFunc("POST "+APIPrefix+"general", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, "general", s.execGeneral)
	})
	s.mux.HandleFunc("POST "+APIPrefix+"linear", func(w http.ResponseWriter, r *http.Request) {
		s.handleCoalesced(w, r, "linear")
	})
	s.mux.HandleFunc("POST "+APIPrefix+"moebius", func(w http.ResponseWriter, r *http.Request) {
		s.handleCoalesced(w, r, "moebius")
	})
	s.mux.HandleFunc("POST "+APIPrefix+"grid2d", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, "grid2d", s.execGrid2D)
	})
	s.mux.HandleFunc("POST "+APIPrefix+"loop", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, "loop", s.execLoop)
	})
	s.mux.HandleFunc("POST "+ShardPrefix+"solve", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, "shard", s.execShard)
	})
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.sessionRoutes()
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (the example prints from it).
func (s *Server) Registry() *Registry { return s.reg }

// BatchStats reports (batches dispatched, requests coalesced into them) —
// convenience over the underlying metrics.
func (s *Server) BatchStats() (batches, coalesced int64) {
	return s.metrics.batches.Value(), int64(s.metrics.batchSize.Sum())
}

// ListenAndServe serves on cfg.Addr until ctx is cancelled, then drains
// gracefully: readyz flips to 503, in-flight solves finish under their own
// deadlines, and the listener closes. A second ctx cancellation is not
// needed; drain is bounded by the longest per-request deadline.
func (s *Server) ListenAndServe(ctx context.Context) error {
	hs := &http.Server{Addr: s.cfg.Addr, Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.MaxTimeout)
	defer cancel()
	err := s.Shutdown(drainCtx)
	if herr := hs.Shutdown(drainCtx); err == nil {
		err = herr
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed
	return err
}

// Shutdown drains the service: new solve requests are refused with 503,
// queued and running solves finish (bounded by ctx), the coalescer flushes,
// and the worker pool exits. Safe to call once; later calls return nil
// immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		s.metrics.ready.Set(0)
		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
			// Cancel stragglers so pool.close below still terminates.
			s.cancel()
			<-done
		}
		// Drain the streaming sessions after in-flight appends finished: every
		// open session closes (later appends answer 404) and the idle sweeper
		// stops.
		s.sessions.CloseAll()
		s.sessions.Close()
		s.co.close()
		s.pool.close()
		s.cancel()
	})
	return err
}

// ---------------------------------------------------------------- handlers

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeText(w, "healthz", http.StatusOK, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.writeText(w, "readyz", http.StatusServiceUnavailable, "draining\n")
		return
	}
	s.writeText(w, "readyz", http.StatusOK, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = s.reg.WriteTo(w)
	s.metrics.requests.Inc("metrics", "200")
}

// execFunc validates a decoded request and returns the closure that a pool
// worker will run; validation errors surface before admission as 4xx.
type execFunc func(body []byte) (func(ctx context.Context) (any, error), error)

// handleSolve is the common path for directly-executed endpoints
// (ordinary, general, loop): decode+validate, admit, run on the pool, wait.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, endpoint string, exec execFunc) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.metrics.inflight.Inc()
	defer s.metrics.inflight.Dec()
	start := time.Now()
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.writeError(w, endpoint, http.StatusServiceUnavailable, "draining")
		return
	}
	body, werr := s.readBody(w, r)
	if werr != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, werr.Error())
		return
	}
	run, err := exec(body)
	if err != nil {
		s.writeError(w, endpoint, statusForValidation(err), err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, timeoutOf(body))
	defer cancel()

	type outcome struct {
		v   any
		err error
	}
	res := make(chan outcome, 1)
	j := &job{ctx: ctx, tenant: tenantOf(r), run: func(jctx context.Context) {
		if err := jctx.Err(); err != nil {
			res <- outcome{err: err}
			return
		}
		if s.testHook != nil {
			s.testHook()
		}
		v, err := run(jctx)
		res <- outcome{v: v, err: err}
	}}
	// shed makes the queued job evictable under priority shedding; the
	// buffered res channel means delivery never blocks the pool.
	j.shed = func() { res <- outcome{err: errShed} }
	if err := s.pool.submit(j); err != nil {
		s.refuse(w, endpoint, err)
		return
	}
	select {
	case out := <-res:
		s.metrics.latency.With(endpoint).Observe(time.Since(start).Seconds())
		if errors.Is(out.err, errShed) {
			// Evicted from the queue by a higher-priority tenant.
			s.refuse(w, endpoint, out.err)
			return
		}
		if out.err != nil {
			s.writeError(w, endpoint, statusForSolve(out.err), out.err.Error())
			return
		}
		s.writeJSON(w, endpoint, http.StatusOK, out.v)
	case <-ctx.Done():
		// Deadline or client disconnect while queued/solving; the worker
		// will observe ctx and abandon the solve.
		s.metrics.latency.With(endpoint).Observe(time.Since(start).Seconds())
		s.writeError(w, endpoint, statusForSolve(ctx.Err()), ctx.Err().Error())
	}
}

// handleCoalesced is the path for linear/moebius requests: full validation
// up front, then admission into the coalescer rather than the plain queue.
func (s *Server) handleCoalesced(w http.ResponseWriter, r *http.Request, endpoint string) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.metrics.inflight.Inc()
	defer s.metrics.inflight.Dec()
	start := time.Now()
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.writeError(w, endpoint, http.StatusServiceUnavailable, "draining")
		return
	}
	body, werr := s.readBody(w, r)
	if werr != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, werr.Error())
		return
	}
	ms, x0, opts, err := s.decodeMoebius(endpoint, body)
	if err != nil {
		s.writeError(w, endpoint, statusForValidation(err), err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, opts.TimeoutMs)
	defer cancel()
	// Charge the tenant's quota while the request sits in the coalescer:
	// batch jobs run under the internal tenant, so without the reservation
	// the coalesced path would sidestep MaxQueued entirely.
	tenant := tenantOf(r)
	if err := s.pool.reserve(tenant); err != nil {
		s.refuse(w, endpoint, err)
		return
	}
	defer s.pool.release(tenant)
	it := &batchItem{ms: ms, x0: x0, ctx: ctx, res: make(chan batchResult, 1)}
	if s.plans != nil {
		it.fp = ir.PlanFingerprint(ir.FamilyMoebius, len(ms.G), ms.M, ms.G, ms.F, nil, 0)
	}
	select {
	case s.co.in <- it:
	default:
		s.metrics.tenantShed.Inc(s.shedLabel(tenant))
		s.refuse(w, endpoint, errShed)
		return
	}
	select {
	case br := <-it.res:
		s.metrics.latency.With(endpoint).Observe(time.Since(start).Seconds())
		if br.err != nil {
			s.writeError(w, endpoint, statusForSolve(br.err), br.err.Error())
			return
		}
		s.writeJSON(w, endpoint, http.StatusOK, MoebiusResponse{
			Values:    br.values,
			BatchSize: br.size,
			ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		})
	case <-ctx.Done():
		s.metrics.latency.With(endpoint).Observe(time.Since(start).Seconds())
		s.writeError(w, endpoint, statusForSolve(ctx.Err()), ctx.Err().Error())
	}
}

// decodeMoebius turns a linear or moebius request body into a validated
// MoebiusSystem ready for batching.
func (s *Server) decodeMoebius(endpoint string, body []byte) (*moebius.MoebiusSystem, []float64, ir.OptionsWire, error) {
	var ms *moebius.MoebiusSystem
	var x0 []float64
	var opts ir.OptionsWire
	switch endpoint {
	case "linear":
		var req LinearRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, nil, opts, fmt.Errorf("bad request body: %v", err)
		}
		if req.Extended {
			if len(req.X0) != req.M {
				return nil, nil, opts, fmt.Errorf("extended form: len(x0) = %d, want m = %d", len(req.X0), req.M)
			}
			ms = moebius.NewExtended(req.M, req.G, req.F, req.A, req.B, req.X0)
		} else {
			ms = moebius.NewLinear(req.M, req.G, req.F, req.A, req.B)
		}
		x0, opts = req.X0, req.Opts
	case "moebius":
		var req MoebiusRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, nil, opts, fmt.Errorf("bad request body: %v", err)
		}
		ms = &moebius.MoebiusSystem{M: req.M, G: req.G, F: req.F, A: req.A, B: req.B, C: req.C, D: req.D}
		x0, opts = req.X0, req.Opts
	default:
		panic("unreachable endpoint " + endpoint)
	}
	if len(ms.G) > s.cfg.MaxN {
		return nil, nil, opts, fmt.Errorf("n = %d exceeds the server limit %d", len(ms.G), s.cfg.MaxN)
	}
	if err := ms.Validate(); err != nil {
		return nil, nil, opts, err
	}
	if err := ms.CheckFinite(); err != nil {
		return nil, nil, opts, err
	}
	if len(x0) != ms.M {
		return nil, nil, opts, fmt.Errorf("len(x0) = %d, want m = %d", len(x0), ms.M)
	}
	for i, v := range x0 {
		if v != v || v > maxFinite || v < -maxFinite {
			return nil, nil, opts, fmt.Errorf("x0[%d] = %v is not finite", i, v)
		}
	}
	return ms, x0, opts, nil
}

const maxFinite = 1.7976931348623157e308

// ------------------------------------------------------------ direct execs

func (s *Server) execOrdinary(body []byte) (func(ctx context.Context) (any, error), error) {
	var req OrdinaryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	if req.System.IsSparse() {
		return s.execSparseOrdinary(&req)
	}
	sys, opt, err := s.systemAndOptions(req.System, req.Opts)
	if err != nil {
		return nil, err
	}
	if !sys.Ordinary() {
		return nil, fmt.Errorf("%w: /v1/solve/ordinary requires H = G (use /v1/solve/general)", ir.ErrInvalidSystem)
	}
	iop, err := intOp(req.Op, req.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		init, err := DecodeInitInt(req.Init)
		if err != nil {
			return nil, err
		}
		if len(init) != sys.M {
			return nil, fmt.Errorf("len(init) = %d, want m = %d", len(init), sys.M)
		}
		return func(ctx context.Context) (any, error) {
			start := time.Now()
			res, err := solveOrdinary(ctx, s, sys, iop, init, opt)
			if err != nil {
				return nil, err
			}
			return OrdinaryResponse{ValuesInt: res.Values, Rounds: res.Rounds,
				Combines: res.Combines, ElapsedMs: ms(start)}, nil
		}, nil
	}
	fop, err := floatOp(req.Op)
	if err != nil {
		return nil, err
	}
	if fop == nil {
		return nil, fmt.Errorf("unknown op %q (one of %s)", req.Op, strings.Join(OpNames(), ", "))
	}
	init, err := DecodeInitFloat(req.Init)
	if err != nil {
		return nil, err
	}
	if len(init) != sys.M {
		return nil, fmt.Errorf("len(init) = %d, want m = %d", len(init), sys.M)
	}
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		res, err := solveOrdinary(ctx, s, sys, fop, init, opt)
		if err != nil {
			return nil, err
		}
		return OrdinaryResponse{ValuesFloat: res.Values, Rounds: res.Rounds,
			Combines: res.Combines, ElapsedMs: ms(start)}, nil
	}, nil
}

// execSparseOrdinary handles the sparse encoding of /v1/solve/ordinary: the
// wire system carries the touched-cell list and compact index maps, and the
// init array is in compact order (length len(cells)). The response echoes
// the touched cells alongside the compact-order values. Malformed sparse
// encodings answer 422 (see statusForValidation).
func (s *Server) execSparseOrdinary(req *OrdinaryRequest) (func(ctx context.Context) (any, error), error) {
	sp, opt, err := s.sparseAndOptions(req.System, req.Opts)
	if err != nil {
		return nil, err
	}
	if !sp.Compact.Ordinary() {
		return nil, fmt.Errorf("%w: /v1/solve/ordinary requires H = G (use /v1/solve/general)", ir.ErrInvalidSparse)
	}
	iop, err := intOp(req.Op, req.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		init, err := DecodeInitInt(req.Init)
		if err != nil {
			return nil, err
		}
		if len(init) != sp.NumCells() {
			return nil, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d", ir.ErrInvalidSparse, len(init), sp.NumCells())
		}
		return func(ctx context.Context) (any, error) {
			start := time.Now()
			res, err := solveSparseOrdinary(ctx, s, sp, iop, init, opt)
			if err != nil {
				return nil, err
			}
			return OrdinaryResponse{ValuesInt: res.Values, Cells: sp.Cells, Rounds: res.Rounds,
				Combines: res.Combines, ElapsedMs: ms(start)}, nil
		}, nil
	}
	fop, err := floatOp(req.Op)
	if err != nil {
		return nil, err
	}
	if fop == nil {
		return nil, fmt.Errorf("unknown op %q (one of %s)", req.Op, strings.Join(OpNames(), ", "))
	}
	init, err := DecodeInitFloat(req.Init)
	if err != nil {
		return nil, err
	}
	if len(init) != sp.NumCells() {
		return nil, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d", ir.ErrInvalidSparse, len(init), sp.NumCells())
	}
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		res, err := solveSparseOrdinary(ctx, s, sp, fop, init, opt)
		if err != nil {
			return nil, err
		}
		return OrdinaryResponse{ValuesFloat: res.Values, Cells: sp.Cells, Rounds: res.Rounds,
			Combines: res.Combines, ElapsedMs: ms(start)}, nil
	}, nil
}

// execSparseGeneral is execSparseOrdinary's general-family twin (reached
// from execGeneral when the wire system is sparse-encoded). Power traces
// name global cells.
func (s *Server) execSparseGeneral(req *GeneralRequest, opt ir.SolveOptions) (func(ctx context.Context) (any, error), error) {
	sp, _, err := s.sparseAndOptions(req.System, req.Opts)
	if err != nil {
		return nil, err
	}
	iop, err := intOp(req.Op, req.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		init, err := DecodeInitInt(req.Init)
		if err != nil {
			return nil, err
		}
		if len(init) != sp.NumCells() {
			return nil, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d", ir.ErrInvalidSparse, len(init), sp.NumCells())
		}
		return func(ctx context.Context) (any, error) {
			start := time.Now()
			res, err := solveSparseGeneral(ctx, s, sp, iop, init, opt)
			if err != nil {
				return nil, err
			}
			out := GeneralResponse{ValuesInt: res.Values, Cells: sp.Cells, CAPRounds: res.CAPRounds, ElapsedMs: ms(start)}
			if req.WithPowers {
				out.Powers = res.Powers
			}
			return out, nil
		}, nil
	}
	fop, err := floatOp(req.Op)
	if err != nil {
		return nil, err
	}
	if fop == nil {
		return nil, fmt.Errorf("unknown op %q (one of %s)", req.Op, strings.Join(OpNames(), ", "))
	}
	init, err := DecodeInitFloat(req.Init)
	if err != nil {
		return nil, err
	}
	if len(init) != sp.NumCells() {
		return nil, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d", ir.ErrInvalidSparse, len(init), sp.NumCells())
	}
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		res, err := solveSparseGeneral(ctx, s, sp, fop, init, opt)
		if err != nil {
			return nil, err
		}
		out := GeneralResponse{ValuesFloat: res.Values, Cells: sp.Cells, CAPRounds: res.CAPRounds, ElapsedMs: ms(start)}
		if req.WithPowers {
			out.Powers = res.Powers
		}
		return out, nil
	}, nil
}

func (s *Server) execGeneral(body []byte) (func(ctx context.Context) (any, error), error) {
	var req GeneralRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	if req.System.IsSparse() {
		opt, err := req.Opts.Options()
		if err != nil {
			return nil, err
		}
		opt.Procs = s.clampProcs(opt.Procs)
		opt.MaxExponentBits = s.cfg.MaxExponentBits
		if b := req.Opts.MaxExponentBits; b > 0 && b < opt.MaxExponentBits {
			opt.MaxExponentBits = b
		}
		return s.execSparseGeneral(&req, opt)
	}
	sys, opt, err := s.systemAndOptions(req.System, req.Opts)
	if err != nil {
		return nil, err
	}
	opt.MaxExponentBits = s.cfg.MaxExponentBits
	if b := req.Opts.MaxExponentBits; b > 0 && b < opt.MaxExponentBits {
		opt.MaxExponentBits = b
	}
	iop, err := intOp(req.Op, req.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		init, err := DecodeInitInt(req.Init)
		if err != nil {
			return nil, err
		}
		if len(init) != sys.M {
			return nil, fmt.Errorf("len(init) = %d, want m = %d", len(init), sys.M)
		}
		return func(ctx context.Context) (any, error) {
			start := time.Now()
			res, err := solveGeneral(ctx, s, sys, iop, init, opt)
			if err != nil {
				return nil, err
			}
			out := GeneralResponse{ValuesInt: res.Values, CAPRounds: res.CAPRounds, ElapsedMs: ms(start)}
			if req.WithPowers {
				out.Powers = res.Powers
			}
			return out, nil
		}, nil
	}
	fop, err := floatOp(req.Op)
	if err != nil {
		return nil, err
	}
	if fop == nil {
		return nil, fmt.Errorf("unknown op %q (one of %s)", req.Op, strings.Join(OpNames(), ", "))
	}
	init, err := DecodeInitFloat(req.Init)
	if err != nil {
		return nil, err
	}
	if len(init) != sys.M {
		return nil, fmt.Errorf("len(init) = %d, want m = %d", len(init), sys.M)
	}
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		res, err := solveGeneral(ctx, s, sys, fop, init, opt)
		if err != nil {
			return nil, err
		}
		out := GeneralResponse{ValuesFloat: res.Values, CAPRounds: res.CAPRounds, ElapsedMs: ms(start)}
		if req.WithPowers {
			out.Powers = res.Powers
		}
		return out, nil
	}, nil
}

func (s *Server) execGrid2D(body []byte) (func(ctx context.Context) (any, error), error) {
	var req Grid2DRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	sys := &req.System
	if cells := int64(sys.Rows) * int64(sys.Cols); sys.Rows > 0 && sys.Cols > 0 && cells > int64(s.cfg.MaxN) {
		return nil, fmt.Errorf("grid %dx%d = %d cells exceeds the server limit %d",
			sys.Rows, sys.Cols, cells, s.cfg.MaxN)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	opt, err := req.Opts.Options()
	if err != nil {
		return nil, err
	}
	opt.Procs = s.clampProcs(opt.Procs)
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		res, err := solveGrid2D(ctx, s, sys, opt)
		if err != nil {
			return nil, err
		}
		return Grid2DResponse{Values: res.Values, Rounds: res.Rounds,
			Cells: res.Cells, ElapsedMs: ms(start)}, nil
	}, nil
}

func (s *Server) execLoop(body []byte) (func(ctx context.Context) (any, error), error) {
	var req LoopRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	if req.Loop == "" {
		return nil, fmt.Errorf("missing \"loop\" source")
	}
	loop, err := ir.ParseLoop(req.Loop)
	if err != nil {
		return nil, err
	}
	c := ir.CompileLoop(loop)
	procs := s.clampProcs(req.Opts.Procs)
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		env := ir.NewEnv()
		if req.N != 0 {
			env.Scalars["n"] = float64(req.N)
		}
		for k, v := range req.Scalars {
			env.Scalars[k] = v
		}
		for k, v := range req.Arrays {
			env.Arrays[k] = append([]float64(nil), v...)
		}
		if err := c.ExecuteCtx(ctx, env, procs); err != nil {
			return nil, err
		}
		return LoopResponse{
			Analysis:  c.Analysis.Describe(),
			Strategy:  c.Strategy(),
			Arrays:    env.Arrays,
			ElapsedMs: ms(start),
		}, nil
	}, nil
}

// ---------------------------------------------------------------- plumbing

// systemAndOptions validates the wire system against server limits and
// resolves the effective solve options.
func (s *Server) systemAndOptions(w ir.SystemWire, ow ir.OptionsWire) (*ir.System, ir.SolveOptions, error) {
	if w.N > s.cfg.MaxN || len(w.G) > s.cfg.MaxN {
		return nil, ir.SolveOptions{}, fmt.Errorf("n = %d exceeds the server limit %d", max(w.N, len(w.G)), s.cfg.MaxN)
	}
	sys, err := w.System()
	if err != nil {
		return nil, ir.SolveOptions{}, err
	}
	opt, err := ow.Options()
	if err != nil {
		return nil, ir.SolveOptions{}, err
	}
	opt.Procs = s.clampProcs(opt.Procs)
	return sys, opt, nil
}

// sparseAndOptions is systemAndOptions' sparse twin: it bounds the compact
// dimensions (iterations and touched cells) by MaxN — the global cell count
// is deliberately unbounded, since sparse work scales with the touched count
// — decodes and validates the sparse encoding, and resolves options. When
// the sparse fast path is disabled the dense fallback would materialize the
// global array, so the global size must then also fit MaxN.
func (s *Server) sparseAndOptions(w ir.SystemWire, ow ir.OptionsWire) (*ir.SparseSystem, ir.SolveOptions, error) {
	if w.N > s.cfg.MaxN || len(w.G) > s.cfg.MaxN || len(w.Cells) > s.cfg.MaxN {
		return nil, ir.SolveOptions{}, fmt.Errorf("n = %d exceeds the server limit %d",
			max(w.N, max(len(w.G), len(w.Cells))), s.cfg.MaxN)
	}
	sp, err := w.Sparse()
	if err != nil {
		return nil, ir.SolveOptions{}, err
	}
	if !ir.SparseEnabled() && sp.M > s.cfg.MaxN {
		return nil, ir.SolveOptions{}, fmt.Errorf("global m = %d exceeds the server limit %d while the sparse fast path is disabled",
			sp.M, s.cfg.MaxN)
	}
	opt, err := ow.Options()
	if err != nil {
		return nil, ir.SolveOptions{}, err
	}
	opt.Procs = s.clampProcs(opt.Procs)
	return sp, opt, nil
}

// clampProcs resolves a client-requested procs count against the server's
// per-solve budget.
func (s *Server) clampProcs(req int) int {
	if req <= 0 || req > s.cfg.Procs {
		return s.cfg.Procs
	}
	return req
}

// requestContext derives the solve ctx: the request's own ctx (cancelled on
// client disconnect) bounded by the effective deadline.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// timeoutOf peeks the timeout_ms option out of a raw body; decode errors
// are reported by the endpoint's own decoder, so they're ignored here.
func timeoutOf(body []byte) int {
	var probe struct {
		Opts ir.OptionsWire `json:"opts"`
	}
	_ = json.Unmarshal(body, &probe)
	return probe.Opts.TimeoutMs
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	defer rd.Close()
	body, err := io.ReadAll(rd)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxRequestBytes)
		}
		return nil, fmt.Errorf("reading request body: %v", err)
	}
	return body, nil
}

// refuse answers an admission failure: 429 + Retry-After for a full queue
// or a spent tenant quota, 503 for draining.
func (s *Server) refuse(w http.ResponseWriter, endpoint string, err error) {
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	if errors.Is(err, errDraining) {
		s.writeError(w, endpoint, http.StatusServiceUnavailable, "draining")
		return
	}
	s.metrics.shed.Inc(endpoint)
	if errors.Is(err, errTenantShed) {
		s.writeError(w, endpoint, http.StatusTooManyRequests,
			"tenant queue quota exceeded, retry later")
		return
	}
	s.writeError(w, endpoint, http.StatusTooManyRequests,
		fmt.Sprintf("admission queue full (capacity %d), retry later", s.cfg.QueueDepth))
}

// shedLabel bounds the irserved_tenant_shed_total label set: configured
// tenants (plus the default and internal ones) keep their own label, while
// arbitrary unconfigured X-IR-Tenant values fold into "other" so a client
// inventing tenant names cannot grow the metric series without bound.
func (s *Server) shedLabel(tenant string) string {
	if tenant == DefaultTenant || tenant == internalTenant {
		return tenant
	}
	if _, ok := s.cfg.Tenants[tenant]; ok {
		return tenant
	}
	return "other"
}

// tenantOf names the request's admission tenant from the X-IR-Tenant
// header; absent means DefaultTenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// statusForValidation maps pre-admission errors (all client mistakes) to
// 400, except sparse-encoding defects — an unsorted, duplicated or
// out-of-range touched-cell list, compact ids off the cell list, a
// wrong-length compact init — which answer 422: the request parsed but its
// sparse encoding is semantically unprocessable.
func statusForValidation(err error) int {
	if errors.Is(err, ir.ErrInvalidSparse) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// statusForSolve maps solver errors to HTTP statuses.
func statusForSolve(err error) int {
	var pe *parallel.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ir.ErrInvalidSystem), errors.Is(err, moebius.ErrBadSystem),
		errors.Is(err, ir.ErrShard):
		return http.StatusBadRequest
	case errors.Is(err, ir.ErrNonFinite), errors.Is(err, ir.ErrGrid2DNonFinite),
		errors.Is(err, ir.ErrExponentLimit), errors.Is(err, ir.ErrInvalidSparse):
		return http.StatusUnprocessableEntity
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
	s.metrics.requests.Inc(endpoint, strconv.Itoa(code))
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, msg string) {
	s.writeJSON(w, endpoint, code, ErrorResponse{Error: msg, Code: code})
}

func (s *Server) writeText(w http.ResponseWriter, endpoint string, code int, body string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	_, _ = w.Write([]byte(body))
	s.metrics.requests.Inc(endpoint, strconv.Itoa(code))
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
