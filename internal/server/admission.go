package server

import (
	"context"
	"errors"
	"sync"

	"indexedrec/internal/parallel"
)

// Admission control and the worker pool. Every solve — single request or
// coalesced batch — is a job. Jobs pass through one bounded queue; when the
// queue is full the submitter sheds load (HTTP 429 upstream) instead of
// queueing unboundedly. A fixed pool of workers drains the queue, so at most
// Workers solves run concurrently and solver-internal parallelism
// (Options.Procs goroutines per solve) composes with request-level
// parallelism into a bounded total.

// errShed is returned by submit when the queue is full.
var errShed = errors.New("server: queue full, load shed")

// errDraining is returned by submit once shutdown has begun.
var errDraining = errors.New("server: draining, not accepting work")

// job is one unit of solver work. run executes on a worker goroutine and is
// responsible for delivering its own results (each handler waits on its own
// result channel). The context run receives is the job's own ctx, wrapped
// with the worker's persistent gang (when the server runs solves in
// parallel), so every solve of a worker's lifetime shares one set of parked
// solver goroutines.
type job struct {
	ctx context.Context
	run func(ctx context.Context)
}

// pool is the bounded admission queue plus its workers.
type pool struct {
	queue  chan *job
	procs  int          // per-solve parallelism; sizes each worker's gang
	mu     sync.RWMutex // guards closed vs. concurrent submits
	closed bool
	wg     sync.WaitGroup
}

func newPool(workers, depth, procs int) *pool {
	p := &pool{queue: make(chan *job, depth), procs: procs}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	// Each worker owns one gang for its whole lifetime: the solvers find it
	// pinned on the job context and reuse it across every round of every
	// solve, so steady-state service traffic spawns no solver goroutines at
	// all. Width is the per-solve procs budget (requests are clamped to it);
	// a budget of 1 means sequential solves and no gang.
	var g *parallel.Gang
	if p.procs > 1 {
		g = parallel.NewGang(p.procs)
		defer g.Close()
	}
	for j := range p.queue {
		if j.ctx.Err() != nil {
			// The requester gave up (deadline or disconnect) while the
			// job sat in the queue; its run func observes ctx and
			// reports the cancellation without doing solver work.
			j.run(j.ctx)
			continue
		}
		ctx := parallel.WithGang(j.ctx, g)
		runSafely(func() { j.run(ctx) })
	}
}

// runSafely executes fn, swallowing any panic that escaped the solver's own
// recovery (the ctx solvers recover worker panics already; this guards the
// glue code so one bad request can never kill the daemon's worker pool).
func runSafely(fn func()) {
	var err error
	defer parallel.RecoverTo(&err)
	fn()
}

// submit enqueues j, failing fast with errShed when the queue is full or
// errDraining after shutdown began. It never blocks.
func (p *pool) submit(j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return errShed
	}
}

// submitWait is submit for internal producers (the coalescer) whose items
// were already admitted: it blocks until a worker frees queue space rather
// than shedding, providing backpressure instead of loss. It still fails
// with errDraining if the pool closed before the send completed.
func (p *pool) submitWait(j *job) error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errDraining
	}
	// Hold the read lock for the send: close() takes the write lock, so
	// the channel cannot be closed mid-send. Workers keep draining while
	// we block, so the send always completes.
	defer p.mu.RUnlock()
	select {
	case p.queue <- j:
		return nil
	case <-j.ctx.Done():
		return j.ctx.Err()
	}
}

// depth reports the number of queued (not yet running) jobs.
func (p *pool) depth() int { return len(p.queue) }

// close stops intake and waits for queued and running jobs to finish.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
