package server

import (
	"context"
	"errors"
	"sync"

	"indexedrec/internal/parallel"
)

// Admission control and the worker pool. Every solve — single request or
// coalesced batch — is a job. Jobs pass through one bounded multi-tenant
// queue; when the queue is full the submitter sheds load (HTTP 429
// upstream) instead of queueing unboundedly. A fixed pool of workers drains
// the queue, so at most Workers solves run concurrently and solver-internal
// parallelism (Options.Procs goroutines per solve) composes with
// request-level parallelism into a bounded total.
//
// Tenancy refines both ends of the queue. Each request carries a tenant
// (the X-IR-Tenant header; absent means DefaultTenant) and every tenant
// owns a FIFO of its queued jobs. Dequeue is weighted fair queueing over
// those FIFOs: each job is tagged with a virtual finish time
// max(tenant vtime, pool vclock) + 1/weight at enqueue, and workers always
// run the job with the smallest tag, so a tenant with weight w receives a
// w-proportional share of worker slots under contention while idle tenants
// lose nothing. Admission enforces a per-tenant MaxQueued quota, and when
// the global queue is full a submitter with higher priority evicts the
// newest queued job of the lowest-priority tenant below it (the evicted
// request answers 429) instead of being refused itself.

// errShed is returned by submit when the queue is full.
var errShed = errors.New("server: queue full, load shed")

// errTenantShed is returned by submit when the tenant's own MaxQueued
// quota is exhausted, regardless of global queue occupancy.
var errTenantShed = errors.New("server: tenant queue quota exceeded, load shed")

// errDraining is returned by submit once shutdown has begun.
var errDraining = errors.New("server: draining, not accepting work")

// DefaultTenant is the tenant requests without an X-IR-Tenant header are
// accounted under.
const DefaultTenant = "default"

// internalTenant owns the server's own work (coalesced batch dispatches):
// high weight, never evictable, no quota.
const internalTenant = "_internal"

// internalPriority outranks any configurable tenant priority so internal
// work is never an eviction victim by priority comparison (its jobs carry
// no shed hook either, which already exempts them).
const internalPriority = 1 << 30

// TenantConfig tunes one tenant's share of the admission queue; the zero
// value means weight 1, priority 0, no per-tenant quota.
type TenantConfig struct {
	// Weight is the tenant's WFQ share: under contention a tenant with
	// weight w gets w/(sum of active weights) of the worker slots
	// (default 1; values < 1 are raised to 1).
	Weight int
	// Priority orders tenants for load shedding: when the queue is full, a
	// higher-priority submitter evicts the newest queued job of the
	// lowest-priority tenant strictly below it. Equal priorities never
	// evict each other (default 0).
	Priority int
	// MaxQueued bounds this tenant's queued (not yet running) jobs,
	// including reservations held by in-flight coalesced requests; 0 means
	// no per-tenant bound beyond the global queue.
	MaxQueued int
}

func (c TenantConfig) weight() float64 {
	if c.Weight < 1 {
		return 1
	}
	return float64(c.Weight)
}

// job is one unit of solver work. run executes on a worker goroutine and is
// responsible for delivering its own results (each handler waits on its own
// result channel). The context run receives is the job's own ctx, wrapped
// with the worker's persistent gang (when the server runs solves in
// parallel), so every solve of a worker's lifetime shares one set of parked
// solver goroutines.
type job struct {
	ctx context.Context
	run func(ctx context.Context)

	// tenant names the admission account; empty means DefaultTenant.
	tenant string
	// tag is the WFQ virtual finish time, assigned at enqueue.
	tag float64
	// shed, when non-nil, marks the job evictable under priority shedding
	// and delivers the shed outcome to its waiting handler. It must not
	// block (handlers use buffered result channels).
	shed func()
}

// tenantQueue is one tenant's slice of the admission queue.
type tenantQueue struct {
	name  string
	cfg   TenantConfig
	jobs  []*job
	vtime float64 // virtual finish time of the newest enqueued job
	// pending counts coalesced-path reservations: requests admitted into
	// the coalescer whose batch job has not yet been enqueued. They hold
	// quota so a tenant cannot sidestep MaxQueued through the batch path.
	pending int
}

// evictable reports whether the tenant holds at least one shed-capable job.
func (tq *tenantQueue) evictable() bool {
	for _, j := range tq.jobs {
		if j.shed != nil {
			return true
		}
	}
	return false
}

// pool is the bounded multi-tenant admission queue plus its workers.
type pool struct {
	depthBound int
	procs      int // per-solve parallelism; sizes each worker's gang
	cfgs       map[string]TenantConfig
	onShed     func(tenant string) // metrics hook; never nil

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	queued  int     // jobs across all tenant FIFOs
	vclock  float64 // pool-wide virtual time floor for new tags
	closed  bool
	wg      sync.WaitGroup
}

func newPool(workers, depth, procs int, tenants map[string]TenantConfig, onShed func(string)) *pool {
	if onShed == nil {
		onShed = func(string) {}
	}
	p := &pool{
		depthBound: depth,
		procs:      procs,
		cfgs:       tenants,
		onShed:     onShed,
		tenants:    make(map[string]*tenantQueue),
	}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// tenantLocked returns (creating on first use) the named tenant's queue.
func (p *pool) tenantLocked(name string) *tenantQueue {
	if name == "" {
		name = DefaultTenant
	}
	tq := p.tenants[name]
	if tq == nil {
		cfg := p.cfgs[name]
		if name == internalTenant {
			cfg = TenantConfig{Weight: 16, Priority: internalPriority}
		}
		tq = &tenantQueue{name: name, cfg: cfg}
		p.tenants[name] = tq
	}
	return tq
}

// gcLocked drops a tenant queue holding no state the scheduler needs: no
// queued jobs, no coalescer reservations, and a vtime at or behind the pool
// vclock — recreating such a queue tags new jobs identically (start =
// vclock), so the drop is invisible to WFQ. Called after every dequeue,
// release, and shed, it keeps the tenants map bounded even when clients
// send arbitrary X-IR-Tenant names.
func (p *pool) gcLocked(tq *tenantQueue) {
	if len(tq.jobs) == 0 && tq.pending == 0 && tq.vtime <= p.vclock {
		delete(p.tenants, tq.name)
	}
}

func (p *pool) worker() {
	defer p.wg.Done()
	// Each worker owns one gang for its whole lifetime: the solvers find it
	// pinned on the job context and reuse it across every round of every
	// solve, so steady-state service traffic spawns no solver goroutines at
	// all. Width is the per-solve procs budget (requests are clamped to it);
	// a budget of 1 means sequential solves and no gang.
	var g *parallel.Gang
	if p.procs > 1 {
		g = parallel.NewGang(p.procs)
		defer g.Close()
	}
	for {
		j := p.next()
		if j == nil {
			return
		}
		if j.ctx.Err() != nil {
			// The requester gave up (deadline or disconnect) while the
			// job sat in the queue; its run func observes ctx and
			// reports the cancellation without doing solver work.
			j.run(j.ctx)
			continue
		}
		ctx := parallel.WithGang(j.ctx, g)
		runSafely(func() { j.run(ctx) })
	}
}

// next blocks until a job is available (returning the fair-queueing pick)
// or the pool has closed and drained (returning nil).
func (p *pool) next() *job {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.queued > 0 {
			var best *tenantQueue
			for _, tq := range p.tenants {
				if len(tq.jobs) == 0 {
					continue
				}
				if best == nil || tq.jobs[0].tag < best.jobs[0].tag ||
					(tq.jobs[0].tag == best.jobs[0].tag && tq.name < best.name) {
					best = tq
				}
			}
			j := best.jobs[0]
			best.jobs[0] = nil
			best.jobs = best.jobs[1:]
			p.queued--
			if j.tag > p.vclock {
				p.vclock = j.tag
			}
			p.gcLocked(best)
			return j
		}
		if p.closed {
			return nil
		}
		p.cond.Wait()
	}
}

// enqueueLocked tags j with its WFQ virtual finish time and appends it to
// its tenant's FIFO.
func (p *pool) enqueueLocked(tq *tenantQueue, j *job) {
	start := tq.vtime
	if p.vclock > start {
		start = p.vclock
	}
	j.tag = start + 1/tq.cfg.weight()
	tq.vtime = j.tag
	tq.jobs = append(tq.jobs, j)
	p.queued++
	p.cond.Signal()
}

// evictLocked frees one queue slot for a submitter with the given priority:
// it sheds the newest evictable job of the lowest-priority tenant strictly
// below priority, reporting whether a slot was freed.
func (p *pool) evictLocked(priority int) bool {
	var victim *tenantQueue
	for _, tq := range p.tenants {
		if tq.cfg.Priority >= priority || !tq.evictable() {
			continue
		}
		if victim == nil || tq.cfg.Priority < victim.cfg.Priority ||
			(tq.cfg.Priority == victim.cfg.Priority && tq.name < victim.name) {
			victim = tq
		}
	}
	if victim == nil {
		return false
	}
	for i := len(victim.jobs) - 1; i >= 0; i-- {
		j := victim.jobs[i]
		if j.shed == nil {
			continue
		}
		victim.jobs = append(victim.jobs[:i], victim.jobs[i+1:]...)
		p.queued--
		p.onShed(victim.name)
		j.shed()
		p.gcLocked(victim)
		return true
	}
	return false
}

// submit enqueues j under its tenant, failing fast with errTenantShed when
// the tenant's quota is spent, errShed when the queue is full and no
// lower-priority victim exists, or errDraining after shutdown began. It
// never blocks.
func (p *pool) submit(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errDraining
	}
	tq := p.tenantLocked(j.tenant)
	if q := tq.cfg.MaxQueued; q > 0 && len(tq.jobs)+tq.pending >= q {
		p.onShed(tq.name)
		p.gcLocked(tq)
		return errTenantShed
	}
	if p.queued >= p.depthBound && !p.evictLocked(tq.cfg.Priority) {
		p.onShed(tq.name)
		// A shed request must not leave behind the queue its lookup
		// created, or arbitrary tenant names grow the map without bound.
		p.gcLocked(tq)
		return errShed
	}
	p.enqueueLocked(tq, j)
	return nil
}

// submitInternal enqueues server-originated work (coalesced batch
// dispatches) under the internal tenant. The items inside were each
// admitted individually — through reserve quotas and the coalescer's own
// bounded intake — so the batch job bypasses capacity checks rather than
// shedding or blocking. It still fails with errDraining once the pool
// closed.
func (p *pool) submitInternal(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errDraining
	}
	j.tenant = internalTenant
	p.enqueueLocked(p.tenantLocked(internalTenant), j)
	return nil
}

// reserve charges one unit of the tenant's MaxQueued quota for a request
// entering the coalesced path, before its batch job exists. Callers must
// pair it with release.
func (p *pool) reserve(tenant string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errDraining
	}
	tq := p.tenantLocked(tenant)
	if q := tq.cfg.MaxQueued; q > 0 && len(tq.jobs)+tq.pending >= q {
		p.onShed(tq.name)
		p.gcLocked(tq)
		return errTenantShed
	}
	tq.pending++
	return nil
}

// release returns a reserve'd quota unit.
func (p *pool) release(tenant string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if tq := p.tenants[orDefault(tenant)]; tq != nil {
		if tq.pending > 0 {
			tq.pending--
		}
		p.gcLocked(tq)
	}
}

func orDefault(tenant string) string {
	if tenant == "" {
		return DefaultTenant
	}
	return tenant
}

// runSafely executes fn, swallowing any panic that escaped the solver's own
// recovery (the ctx solvers recover worker panics already; this guards the
// glue code so one bad request can never kill the daemon's worker pool).
func runSafely(fn func()) {
	var err error
	defer parallel.RecoverTo(&err)
	fn()
}

// depth reports the number of queued (not yet running) jobs.
func (p *pool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// close stops intake, wakes the workers to drain the queued jobs, and waits
// for queued and running jobs to finish.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
