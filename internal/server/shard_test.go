package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"indexedrec/ir"
)

// TestShardEndpoint drives the worker role end to end over HTTP: an
// ordinary chain is cut into two shards, each solved via POST
// /v1/shard/solve, and the merged values must equal the whole-system solve.
func TestShardEndpoint(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		_, ts, down := newTestServer(t, Config{})
		defer down()

		// X[i] := X[i] + X[i-1] over 9 cells — prefix sums of init.
		sys := ir.SystemWire{M: 9, G: []int{1, 2, 3, 4, 5, 6, 7, 8}, F: []int{0, 1, 2, 3, 4, 5, 6, 7}}
		init := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
		rawInit, _ := json.Marshal(init)

		solve := func(sh ShardWire) ShardResponse {
			t.Helper()
			resp, data := post(t, ts.URL+ShardPrefix+"solve", ShardRequest{
				Family: "ordinary",
				System: sys,
				Shard:  sh,
				Op:     "int64-add",
				Init:   rawInit,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("shard %+v: HTTP %d: %s", sh, resp.StatusCode, data)
			}
			var out ShardResponse
			if err := json.Unmarshal(data, &out); err != nil {
				t.Fatal(err)
			}
			return out
		}

		// One chain → one shard; solving it in full must reproduce the
		// sequential recurrence.
		full := solve(ShardWire{Lo: 0, Hi: 1})
		if len(full.Cells) != 8 || len(full.ValuesInt) != 8 {
			t.Fatalf("full shard: %d cells, %d values, want 8 each", len(full.Cells), len(full.ValuesInt))
		}
		want := init[0]
		for k, x := range full.Cells {
			want += init[k+1]
			if x != k+1 || full.ValuesInt[k] != want {
				t.Fatalf("cell %d = %d (value %d), want %d (value %d)", k, x, full.ValuesInt[k], k+1, want)
			}
		}

		// Out-of-range shard → 400 with ErrShard semantics.
		resp, data := post(t, ts.URL+ShardPrefix+"solve", ShardRequest{
			Family: "ordinary", System: sys, Shard: ShardWire{Lo: 0, Hi: 5},
			Op: "int64-add", Init: rawInit,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("oversized shard: HTTP %d: %s", resp.StatusCode, data)
		}

		// Unknown family → 400 before admission.
		resp, data = post(t, ts.URL+ShardPrefix+"solve", ShardRequest{
			Family: "fancy", System: sys, Shard: ShardWire{Lo: 0, Hi: 1},
			Op: "int64-add", Init: rawInit,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown family: HTTP %d: %s", resp.StatusCode, data)
		}
	}()
	leak()
}

// TestShardEndpointMoebius checks the Möbius arm of the worker role against
// the local plan solve.
func TestShardEndpointMoebius(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		_, ts, down := newTestServer(t, Config{})
		defer down()

		m, g, f := 5, []int{1, 2, 3, 4}, []int{0, 1, 2, 3}
		data := ir.PlanData{
			A:  []float64{2, 1, 3, 1},
			B:  []float64{1, 0, 2, 1},
			X0: []float64{1, 0, 0, 0, 0},
		}
		p, err := ir.CompileMoebius(m, g, f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.SolveCtx(t.Context(), data)
		if err != nil {
			t.Fatal(err)
		}

		resp, body := post(t, ts.URL+ShardPrefix+"solve", ShardRequest{
			Family: "moebius",
			System: ir.SystemWire{M: m, G: g, F: f},
			Shard:  ShardWire{Lo: 1, Hi: 5},
			A:      data.A, B: data.B, X0: data.X0,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		var out ShardResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Values) != 4 {
			t.Fatalf("%d values, want 4", len(out.Values))
		}
		for k, v := range out.Values {
			if v != want.Values[1+k] {
				t.Fatalf("cell %d: shard %v != local %v", 1+k, v, want.Values[1+k])
			}
		}
	}()
	leak()
}

// TestVersionEndpoint asserts GET /version answers with the build info the
// binary embeds.
func TestVersionEndpoint(t *testing.T) {
	_, ts, down := newTestServer(t, Config{})
	defer down()
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var v VersionResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Version == "" || v.Go == "" {
		t.Fatalf("version response missing fields: %+v", v)
	}
}
