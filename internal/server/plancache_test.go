package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"indexedrec/ir"
)

// fakePlan is a CachedPlan of a declared size, for exercising the LRU
// bookkeeping without compiling anything.
type fakePlan int64

func (p fakePlan) SizeBytes() int64 { return int64(p) }

func newBareCache(t *testing.T, maxBytes int64) (*PlanCache, *serverMetrics) {
	t.Helper()
	m := newServerMetrics(NewRegistry(), func() float64 { return 0 }, 1)
	return NewPlanCache(maxBytes, m.planCacheMetrics()), m
}

// TestPlanCacheLRU drives the cache directly: byte accounting, recency
// order, eviction of the least-recently-used entry, and the oversized-plan
// admission rule.
func TestPlanCacheLRU(t *testing.T) {
	c, m := newBareCache(t, 100)

	c.Put("a", fakePlan(40))
	c.Put("b", fakePlan(40))
	if _, ok := c.Get("a"); !ok { // refresh a: now b is LRU
		t.Fatal("a missing after put")
	}
	c.Put("c", fakePlan(40)) // 120 > 100: evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted; want the recently-used entry kept")
	}
	if got := m.planEvictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.bytes != 80 || m.planBytes.Value() != 80 {
		t.Errorf("bytes = %d (gauge %v), want 80", c.bytes, m.planBytes.Value())
	}

	// An entry larger than the whole cache is refused outright.
	c.Put("huge", fakePlan(101))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized plan was cached")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}

	// Re-inserting an existing key neither duplicates nor re-accounts.
	c.Put("a", fakePlan(40))
	if c.Len() != 2 || c.bytes != 80 {
		t.Errorf("after duplicate put: len = %d bytes = %d, want 2 and 80", c.Len(), c.bytes)
	}
}

// TestPlanCacheWarmSolves posts identical ordinary, general and linear
// requests twice each and asserts the second pass replayed cached plans
// (hits advanced, answers unchanged) and that the counters surface on
// /metrics under the documented names.
func TestPlanCacheWarmSolves(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s, ts, down := newTestServer(t, Config{})
		defer down()

		ord := OrdinaryRequest{
			System: systemWireChain(16),
			Op:     "int64-add",
			Init:   json.RawMessage(`[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]`),
		}
		gen := GeneralRequest{
			System: systemWireScatter(12),
			Op:     "int64-add",
			Init:   json.RawMessage(`[1,1,1,1,1,1,1,1,1,1,1,1,1]`),
		}
		lin := chainLinear(8)

		var ordVals [2][]int64
		var genVals [2][]int64
		var linVals [2][]float64
		for pass := 0; pass < 2; pass++ {
			resp, data := post(t, ts.URL+APIPrefix+"ordinary", ord)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ordinary pass %d: HTTP %d: %s", pass, resp.StatusCode, data)
			}
			var or OrdinaryResponse
			if err := json.Unmarshal(data, &or); err != nil {
				t.Fatal(err)
			}
			ordVals[pass] = or.ValuesInt

			resp, data = post(t, ts.URL+APIPrefix+"general", gen)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("general pass %d: HTTP %d: %s", pass, resp.StatusCode, data)
			}
			var gr GeneralResponse
			if err := json.Unmarshal(data, &gr); err != nil {
				t.Fatal(err)
			}
			genVals[pass] = gr.ValuesInt

			resp, data = post(t, ts.URL+APIPrefix+"linear", lin)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("linear pass %d: HTTP %d: %s", pass, resp.StatusCode, data)
			}
			var mr MoebiusResponse
			if err := json.Unmarshal(data, &mr); err != nil {
				t.Fatal(err)
			}
			linVals[pass] = mr.Values
		}

		if fmt.Sprint(ordVals[0]) != fmt.Sprint(ordVals[1]) {
			t.Errorf("ordinary warm replay diverged: %v vs %v", ordVals[0], ordVals[1])
		}
		if fmt.Sprint(genVals[0]) != fmt.Sprint(genVals[1]) {
			t.Errorf("general warm replay diverged: %v vs %v", genVals[0], genVals[1])
		}
		if fmt.Sprint(linVals[0]) != fmt.Sprint(linVals[1]) {
			t.Errorf("linear warm replay diverged: %v vs %v", linVals[0], linVals[1])
		}
		if ordVals[1][16] != 17 {
			t.Errorf("ordinary answer wrong: %v", ordVals[1])
		}

		if hits := s.metrics.planHits.Value(); hits < 3 {
			t.Errorf("plan cache hits = %d, want >= 3 (one warm replay per family)", hits)
		}
		if misses := s.metrics.planMisses.Value(); misses < 3 {
			t.Errorf("plan cache misses = %d, want >= 3 (one cold compile per family)", misses)
		}
		if bytes := s.metrics.planBytes.Value(); bytes <= 0 {
			t.Errorf("plan cache bytes gauge = %v, want > 0", bytes)
		}

		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, name := range []string{
			"irserved_plan_cache_hits_total",
			"irserved_plan_cache_misses_total",
			"irserved_plan_cache_evictions_total",
			"irserved_plan_cache_bytes",
		} {
			if !strings.Contains(string(body), name) {
				t.Errorf("/metrics missing %s", name)
			}
		}
	}()
	leak()
}

// TestPlanCacheDisabled sets PlanCacheBytes negative and asserts the server
// runs the direct solve paths: correct answers, no cache, no counter
// movement.
func TestPlanCacheDisabled(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s, ts, down := newTestServer(t, Config{PlanCacheBytes: -1})
		defer down()
		if s.plans != nil {
			t.Fatal("plan cache built despite PlanCacheBytes < 0")
		}
		ord := OrdinaryRequest{
			System: systemWireChain(8),
			Op:     "int64-add",
			Init:   json.RawMessage(`[1,1,1,1,1,1,1,1,1]`),
		}
		for pass := 0; pass < 2; pass++ {
			resp, data := post(t, ts.URL+APIPrefix+"ordinary", ord)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("pass %d: HTTP %d: %s", pass, resp.StatusCode, data)
			}
			resp, data = post(t, ts.URL+APIPrefix+"linear", chainLinear(8))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("linear pass %d: HTTP %d: %s", pass, resp.StatusCode, data)
			}
		}
		if h, m := s.metrics.planHits.Value(), s.metrics.planMisses.Value(); h != 0 || m != 0 {
			t.Errorf("cache counters moved while disabled: hits = %d misses = %d", h, m)
		}
	}()
	leak()
}

// systemWireScatter builds a general (H != G) system as wire JSON:
// A[i+1] = A[i] + A[h(i)] with h(i) hopping around earlier cells.
func systemWireScatter(n int) (w ir.SystemWire) {
	w.M = n + 1
	w.N = n
	for i := 0; i < n; i++ {
		w.G = append(w.G, i+1)
		w.F = append(w.F, i)
		w.H = append(w.H, (i*7)%(i+1))
	}
	return w
}
