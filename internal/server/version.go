package server

import (
	"net/http"
	"runtime/debug"
)

// Build identification. Mixed-version clusters are a routine failure mode
// of rolling deploys; GET /version on every daemon (and the -version flag
// on the binaries) makes "which build is this worker actually running"
// answerable without shelling into the host. Coordinators log each
// worker's version at registration for the same reason.

// BuildVersion reads the binary's build information (module version, Go
// toolchain, VCS revision) via runtime/debug.ReadBuildInfo. Fields the
// build did not embed are left zero.
func BuildVersion() VersionResponse {
	v := VersionResponse{Version: "(unknown)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	v.Go = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "version", http.StatusOK, BuildVersion())
}
