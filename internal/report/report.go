// Package report renders experiment results as aligned text tables, CSV,
// and ASCII log-log plots — the formats irbench and EXPERIMENTS.md use to
// present the regenerated paper artifacts.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == math.Trunc(v) && a < 1e15:
		return fmt.Sprintf("%.0f", v)
	case a >= 1e6 || (a < 1e-3 && a > 0):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named curve of (x, y) points for plotting.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// LogLogPlot renders series on a log-log ASCII grid — the shape of the
// paper's Fig. 3 (instructions vs. processors, both axes logarithmic).
func LogLogPlot(w io.Writer, title, xlabel, ylabel string, width, height int, series ...Series) {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue // log scale: skip non-positive points
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX || minY > maxY {
		fmt.Fprintln(w, "(no plottable points)")
		return
	}
	lx := func(v float64) float64 { return math.Log10(v) }
	spanX := lx(maxX) - lx(minX)
	spanY := lx(maxY) - lx(minY)
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			c := int((lx(s.X[i]) - lx(minX)) / spanX * float64(width-1))
			r := height - 1 - int((lx(s.Y[i])-lx(minY))/spanY*float64(height-1))
			grid[r][c] = s.Marker
		}
	}
	fmt.Fprintf(w, "%s  (log-log; Y: %s, X: %s)\n", title, ylabel, xlabel)
	for r, row := range grid {
		label := "         "
		if r == 0 {
			label = fmt.Sprintf("%8.1e ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.1e ", minY)
		}
		fmt.Fprintf(w, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(w, "%s%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width+2))
	fmt.Fprintf(w, "%s%-*.3g%*.3g\n", strings.Repeat(" ", 10), (width+2)/2, minX, (width+2)-(width+2)/2, maxX)
	for _, s := range series {
		fmt.Fprintf(w, "%s  %c = %s\n", strings.Repeat(" ", 9), s.Marker, s.Name)
	}
}
