package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "count", "ratio")
	tb.AddRow("alpha", 3, 0.5)
	tb.AddRow("b", 12345, 123456789.0)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "12345", "0.5000", "123456789"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	var sb strings.Builder
	tb.CSV(&sb)
	if sb.String() != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", sb.String())
	}
}

func TestFormatFloatIntegers(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(50000.0)
	var sb strings.Builder
	tb.CSV(&sb)
	if !strings.Contains(sb.String(), "50000") || strings.Contains(sb.String(), "50000.") {
		t.Fatalf("integer-valued float misformatted: %q", sb.String())
	}
}

func TestLogLogPlot(t *testing.T) {
	s1 := Series{Name: "parallel", Marker: '*',
		X: []float64{1, 2, 4, 8, 16}, Y: []float64{1600, 800, 400, 200, 100}}
	s2 := Series{Name: "sequential", Marker: 'o',
		X: []float64{1, 2, 4, 8, 16}, Y: []float64{500, 500, 500, 500, 500}}
	var sb strings.Builder
	LogLogPlot(&sb, "fig3", "P", "instructions", 40, 10, s1, s2)
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("plot missing markers:\n%s", out)
	}
	if !strings.Contains(out, "parallel") || !strings.Contains(out, "sequential") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
	// The decreasing series' first point must be ABOVE the flat series'
	// first point (row index smaller).
	lines := strings.Split(out, "\n")
	starRow, oRow := -1, -1
	for r, line := range lines {
		if !strings.HasSuffix(line, "|") {
			continue // only grid rows, not title/legend text
		}
		if i := strings.IndexByte(line, '*'); i >= 0 && starRow == -1 {
			starRow = r
		}
		if i := strings.IndexByte(line, 'o'); i >= 0 && oRow == -1 {
			oRow = r
		}
	}
	if starRow == -1 || oRow == -1 || starRow >= oRow {
		t.Fatalf("expected * to first appear above o (rows %d vs %d):\n%s", starRow, oRow, out)
	}
}

func TestLogLogPlotEmpty(t *testing.T) {
	var sb strings.Builder
	LogLogPlot(&sb, "t", "x", "y", 30, 8, Series{Name: "n", Marker: 'x'})
	if !strings.Contains(sb.String(), "no plottable points") {
		t.Fatalf("empty plot output: %q", sb.String())
	}
}
