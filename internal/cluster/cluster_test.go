package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
	"indexedrec/ir"
)

// checkGoroutines snapshots the goroutine count and returns an assertion
// that the count returned to (near) the snapshot — the cluster layer must
// not leak scatter, hedge, or probe goroutines.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// testWorker is one in-process irserved worker behind an interceptable
// handler, so chaos tests can delay or kill it mid-scatter.
type testWorker struct {
	srv *server.Server
	ts  *httptest.Server
	// intercept, when non-nil, runs before each proxied request; returning
	// false aborts the connection without a response (a crashed worker).
	intercept atomic.Pointer[func(r *http.Request) bool]
	// respond, when non-nil, may answer the request itself (returning
	// true); tests use it to inject synthetic responses such as 429 +
	// Retry-After without touching the real server.
	respond atomic.Pointer[func(w http.ResponseWriter, r *http.Request) bool]
}

func (tw *testWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f := tw.intercept.Load(); f != nil && !(*f)(r) {
		panic(http.ErrAbortHandler)
	}
	if f := tw.respond.Load(); f != nil && (*f)(w, r) {
		return
	}
	tw.srv.Handler().ServeHTTP(w, r)
}

// newFleet starts n in-process workers and a coordinator over them. The
// returned teardown is idempotent and also registered as a cleanup
// backstop; tests call it before their goroutine-leak assertion.
func newFleet(t testing.TB, n int, mut func(*Config)) (*Coordinator, []*testWorker, func()) {
	t.Helper()
	workers := make([]*testWorker, n)
	addrs := make([]string, n)
	for i := range workers {
		tw := &testWorker{srv: server.New(server.Config{})}
		tw.ts = httptest.NewServer(tw)
		workers[i] = tw
		addrs[i] = tw.ts.URL
	}
	cfg := Config{
		Workers:       addrs,
		ProbeInterval: -1, // probed once at New; tests control liveness
		RetryBackoff:  time.Millisecond,
		HedgeAfter:    -1, // chaos tests opt back in explicitly
		Logger:        log.New(io.Discard, "", 0),
	}
	if mut != nil {
		mut(&cfg)
	}
	co := New(cfg)
	var once sync.Once
	down := func() {
		once.Do(func() {
			co.Close()
			for _, tw := range workers {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_ = tw.srv.Shutdown(ctx)
				cancel()
				tw.ts.Close()
			}
			client.SharedTransport().CloseIdleConnections()
		})
	}
	t.Cleanup(down)
	return co, workers, down
}

// specFor builds the solve spec a coordinator endpoint would produce.
func specFor(fam ir.Family, sys *ir.System, m int, g, f []int, data ir.PlanData) *solveSpec {
	if fam == ir.FamilyMoebius {
		return &solveSpec{family: fam, m: m, g: g, f: f, data: data}
	}
	return &solveSpec{family: fam, sys: sys, data: data}
}

// localSolution computes the reference answer with the plan layer directly.
func localSolution(t testing.TB, spec *solveSpec) *ir.PlanSolution {
	t.Helper()
	var p *ir.Plan
	var err error
	if spec.family == ir.FamilyMoebius {
		p, err = ir.CompileMoebius(spec.m, spec.g, spec.f)
	} else {
		p, err = ir.CompileCtx(context.Background(), spec.sys, ir.CompileOptions{
			Family: spec.family, MaxExponentBits: spec.bits,
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p.SolveCtx(context.Background(), spec.data)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// assertSameSolution fails unless distributed and local values agree
// bit-for-bit.
func assertSameSolution(t testing.TB, got, want *ir.PlanSolution) {
	t.Helper()
	if len(got.ValuesInt) != len(want.ValuesInt) ||
		len(got.ValuesFloat) != len(want.ValuesFloat) ||
		len(got.Values) != len(want.Values) {
		t.Fatalf("value shape mismatch: got (%d,%d,%d), want (%d,%d,%d)",
			len(got.ValuesInt), len(got.ValuesFloat), len(got.Values),
			len(want.ValuesInt), len(want.ValuesFloat), len(want.Values))
	}
	for i := range want.ValuesInt {
		if got.ValuesInt[i] != want.ValuesInt[i] {
			t.Fatalf("cell %d: distributed %v != local %v", i, got.ValuesInt[i], want.ValuesInt[i])
		}
	}
	for i := range want.ValuesFloat {
		if got.ValuesFloat[i] != want.ValuesFloat[i] {
			t.Fatalf("cell %d: distributed %v != local %v", i, got.ValuesFloat[i], want.ValuesFloat[i])
		}
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("cell %d: distributed %v != local %v", i, got.Values[i], want.Values[i])
		}
	}
}

// randSpec draws a random solve across all three families from rng.
func randSpec(rng *rand.Rand) *solveSpec {
	m := 1 + rng.Intn(32)
	n := rng.Intn(m + 1)
	switch rng.Intn(3) {
	case 0: // ordinary over float64-add
		perm := rng.Perm(m)
		g := make([]int, n)
		f := make([]int, n)
		for i := 0; i < n; i++ {
			g[i], f[i] = perm[i], rng.Intn(m)
		}
		init := make([]float64, m)
		for x := range init {
			init[x] = rng.Float64()*100 - 50
		}
		return specFor(ir.FamilyOrdinary, &ir.System{M: m, N: n, G: g, F: f}, 0, nil, nil,
			ir.PlanData{Op: "float64-add", InitFloat: init})
	case 1: // general over mul-mod
		n = rng.Intn(2*m + 1)
		g := make([]int, n)
		f := make([]int, n)
		h := make([]int, n)
		for i := 0; i < n; i++ {
			g[i], f[i], h[i] = rng.Intn(m), rng.Intn(m), rng.Intn(m)
		}
		init := make([]int64, m)
		for x := range init {
			init[x] = rng.Int63n(1000) + 1
		}
		spec := specFor(ir.FamilyGeneral, &ir.System{M: m, N: n, G: g, F: f, H: h}, 0, nil, nil,
			ir.PlanData{Op: "mul-mod", Mod: 1_000_003, InitInt: init})
		spec.bits = 4096
		return spec
	default: // moebius with denominators kept off zero
		perm := rng.Perm(m)
		g := make([]int, n)
		f := make([]int, n)
		for i := 0; i < n; i++ {
			g[i], f[i] = perm[i], rng.Intn(m)
		}
		coeffs := func(scale float64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = (rng.Float64()*2 - 1) * scale
			}
			return out
		}
		d := coeffs(3)
		for i := range d {
			d[i] += 1.5
		}
		x0 := make([]float64, m)
		for i := range x0 {
			x0[i] = (rng.Float64()*2 - 1) * 10
		}
		return specFor(ir.FamilyMoebius, nil, m, g, f,
			ir.PlanData{A: coeffs(2), B: coeffs(5), C: coeffs(0.1), D: d, X0: x0})
	}
}

// FuzzClusterAgainstLocal drives random systems of every family through
// 1-, 2- and 4-worker fleets and requires the distributed answer to be
// bit-identical to ir.Plan.SolveCtx.
func FuzzClusterAgainstLocal(f *testing.F) {
	for seed := int64(1); seed <= 6; seed++ {
		f.Add(seed)
	}
	fleets := map[int]*Coordinator{}
	for _, k := range []int{1, 2, 4} {
		co, _, _ := newFleet(f, k, nil)
		fleets[k] = co
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		spec := randSpec(rng)
		wantSol, wantErr := func() (sol *ir.PlanSolution, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("local solve panicked: %v", r)
				}
			}()
			var p *ir.Plan
			if spec.family == ir.FamilyMoebius {
				p, err = ir.CompileMoebius(spec.m, spec.g, spec.f)
			} else {
				p, err = ir.CompileCtx(context.Background(), spec.sys, ir.CompileOptions{
					Family: spec.family, MaxExponentBits: spec.bits,
				})
			}
			if err != nil {
				return nil, err
			}
			sol, err = p.SolveCtx(context.Background(), spec.data)
			return sol, err
		}()
		if wantErr != nil {
			// A division-by-zero or degenerate draw; distributed equivalence
			// needs a finite baseline.
			t.Skip()
		}
		for _, k := range []int{1, 2, 4} {
			got, err := fleets[k].Solve(context.Background(), spec)
			if err != nil {
				t.Fatalf("seed %d, %d workers: %v", seed, k, err)
			}
			assertSameSolution(t, got, wantSol)
		}
	})
}

// TestClusterSolveAllFamilies is the deterministic (non-fuzz) sweep of the
// same property, for plain `go test` runs.
func TestClusterSolveAllFamilies(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, _, down := newFleet(t, 2, nil)
		rng := rand.New(rand.NewSource(42))
		solved := 0
		for trial := 0; solved < 24; trial++ {
			if trial > 400 {
				t.Fatal("too many degenerate draws")
			}
			spec := randSpec(rng)
			var want *ir.PlanSolution
			ok := func() (ok bool) {
				defer func() { recover() }()
				var p *ir.Plan
				var err error
				if spec.family == ir.FamilyMoebius {
					p, err = ir.CompileMoebius(spec.m, spec.g, spec.f)
				} else {
					p, err = ir.CompileCtx(context.Background(), spec.sys, ir.CompileOptions{
						Family: spec.family, MaxExponentBits: spec.bits,
					})
				}
				if err != nil {
					return false
				}
				want, err = p.SolveCtx(context.Background(), spec.data)
				return err == nil
			}()
			if !ok {
				continue
			}
			got, err := co.Solve(context.Background(), spec)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			assertSameSolution(t, got, want)
			solved++
		}
		if co.metrics.shards.Value() == 0 {
			t.Fatal("no shards scattered; solves never went distributed")
		}
		if co.metrics.fallbacks.Value() != 0 {
			t.Fatalf("%d local fallbacks in a healthy fleet", co.metrics.fallbacks.Value())
		}
		down()
	}()
	leak()
}

// TestChaosKillWorkerMidScatter kills one of two workers exactly when it
// receives its first shard request; the coordinator must mark it down,
// re-scatter the shard onto the survivor, and still produce the
// bit-identical answer — with retries observed and no goroutines leaked.
func TestChaosKillWorkerMidScatter(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, workers, down := newFleet(t, 2, nil)

		// Arm worker 0: the first shard request aborts the connection and
		// every later request is refused, like a crashed process.
		var killed atomic.Bool
		kill := func(r *http.Request) bool {
			if r.URL.Path == server.ShardPrefix+"solve" {
				killed.Store(true)
			}
			return !killed.Load()
		}
		workers[0].intercept.Store(&kill)

		// Many-chain ordinary systems; shard placement is rendezvous-hashed
		// per fingerprint, so vary the shape until a shard lands on the
		// armed worker. Every answer along the way must still be exact.
		var spec *solveSpec
		var want *ir.PlanSolution
		for attempt := 0; attempt < 8 && !killed.Load(); attempt++ {
			m := 64 + 2*attempt
			g := make([]int, m/2)
			f := make([]int, m/2)
			init := make([]int64, m)
			for i := range g {
				g[i], f[i] = 2*i+1, 2*i
			}
			for i := range init {
				init[i] = int64(i)
			}
			sys := &ir.System{M: m, N: len(g), G: g, F: f}
			spec = specFor(ir.FamilyOrdinary, sys, 0, nil, nil,
				ir.PlanData{Op: "int64-add", InitInt: init})
			want = localSolution(t, spec)

			got, err := co.Solve(context.Background(), spec)
			if err != nil {
				t.Fatalf("solve across a mid-scatter kill: %v", err)
			}
			assertSameSolution(t, got, want)
		}
		if !killed.Load() {
			t.Fatal("worker 0 never saw a shard; the chaos never happened")
		}
		if co.metrics.retries.Value() == 0 && co.metrics.fallbacks.Value() == 0 {
			t.Fatal("kill produced neither a retry nor a fallback")
		}
		if co.metrics.workerUp.Value(workers[0].ts.URL) != 0 {
			t.Fatal("killed worker still marked up")
		}

		// The fleet keeps answering afterwards, on the survivor alone.
		got, err := co.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("solve after the kill: %v", err)
		}
		assertSameSolution(t, got, want)
		down()
	}()
	leak()
}

// TestFallbackWhenAllWorkersDown asserts graceful degradation: with every
// worker unreachable the coordinator solves locally and says so in its
// metrics.
func TestFallbackWhenAllWorkersDown(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, workers, down := newFleet(t, 1, nil)
		dead := func(r *http.Request) bool { return false }
		workers[0].intercept.Store(&dead)
		for _, w := range co.memberList() {
			w.setUp(false)
		}

		spec := specFor(ir.FamilyOrdinary, &ir.System{M: 4, N: 3, G: []int{1, 2, 3}, F: []int{0, 1, 2}}, 0, nil, nil,
			ir.PlanData{Op: "int64-add", InitInt: []int64{1, 2, 3, 4}})
		want := localSolution(t, spec)
		got, err := co.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("fallback solve: %v", err)
		}
		assertSameSolution(t, got, want)
		if co.metrics.fallbacks.Value() == 0 {
			t.Fatal("no local fallback recorded")
		}
		down()
	}()
	leak()
}

// TestHedgedRequest delays the first shard request each worker sees past
// the hedge threshold; the duplicate fired at the second-ranked worker must
// win and the hedge must be visible in metrics.
func TestHedgedRequest(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, workers, down := newFleet(t, 2, func(cfg *Config) {
			cfg.HedgeAfter = 20 * time.Millisecond
		})
		for _, tw := range workers {
			var once atomic.Bool
			slow := func(r *http.Request) bool {
				if r.URL.Path == server.ShardPrefix+"solve" && once.CompareAndSwap(false, true) {
					time.Sleep(400 * time.Millisecond)
				}
				return true
			}
			tw.intercept.Store(&slow)
		}

		// Single chain → single shard → the first attempt is slow and the
		// hedge lands on the other, still-fast worker.
		spec := specFor(ir.FamilyOrdinary, &ir.System{M: 8, N: 7,
			G: []int{1, 2, 3, 4, 5, 6, 7}, F: []int{0, 1, 2, 3, 4, 5, 6}}, 0, nil, nil,
			ir.PlanData{Op: "int64-add", InitInt: []int64{1, 1, 1, 1, 1, 1, 1, 1}})
		want := localSolution(t, spec)
		got, err := co.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("hedged solve: %v", err)
		}
		assertSameSolution(t, got, want)
		if co.metrics.hedges.Value() == 0 {
			t.Fatal("no hedge fired for a straggling shard")
		}
		down()
	}()
	leak()
}

// TestCoordinatorHTTPFrontEnd exercises the wire path end to end: a client
// posts the ordinary irserved API to the coordinator and gets the same
// answer a worker would give, with /version and /v1/cluster/workers live.
func TestCoordinatorHTTPFrontEnd(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, _, down := newFleet(t, 2, nil)
		front := httptest.NewServer(co.Handler())
		defer front.Close()

		reqBody, _ := json.Marshal(server.OrdinaryRequest{
			System: ir.SystemWire{M: 5, G: []int{1, 2, 3, 4}, F: []int{0, 1, 2, 3}},
			Op:     "int64-add",
			Init:   json.RawMessage(`[1, 2, 3, 4, 5]`),
		})
		resp, err := http.Post(front.URL+server.APIPrefix+"ordinary", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		var out server.OrdinaryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		wantVals := []int64{1, 3, 6, 10, 15}
		for i, v := range wantVals {
			if out.ValuesInt[i] != v {
				t.Fatalf("X[%d] = %d, want %d", i, out.ValuesInt[i], v)
			}
		}

		resp, err = http.Get(front.URL + "/v1/cluster/workers")
		if err != nil {
			t.Fatal(err)
		}
		var ws []WorkerStatus
		err = json.NewDecoder(resp.Body).Decode(&ws)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != 2 || !ws[0].Up || !ws[1].Up {
			t.Fatalf("fleet view: %+v", ws)
		}

		resp, err = http.Post(front.URL+server.APIPrefix+"loop", "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("loop endpoint: HTTP %d, want 501", resp.StatusCode)
		}
		down()
	}()
	leak()
}
