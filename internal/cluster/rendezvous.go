package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Rendezvous (highest-random-weight) hashing ranks the whole fleet for each
// (plan fingerprint, shard index) key. The top-ranked live worker owns the
// shard; on failure the next rank takes over, which doubles as the
// re-scatter path for dead workers. Keying by fingerprint keeps a plan's
// shards sticky — the same worker sees the same shard of the same plan
// every request, so its fingerprint-keyed plan cache stays hot — while the
// shard index spreads one plan's shards across the fleet instead of piling
// them onto a single host.

// rankWorkers orders ws by descending rendezvous score for the key
// (fingerprint, shard). The slice is freshly allocated; callers may consume
// it destructively.
func rankWorkers(ws []*worker, fingerprint string, shard int) []*worker {
	type scored struct {
		w *worker
		s uint64
	}
	key := fingerprint + "#" + strconv.Itoa(shard) + "@"
	ranked := make([]scored, len(ws))
	for i, w := range ws {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		_, _ = h.Write([]byte(w.name))
		ranked[i] = scored{w: w, s: h.Sum64()}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].w.name < ranked[j].w.name
	})
	out := make([]*worker, len(ranked))
	for i, r := range ranked {
		out[i] = r.w
	}
	return out
}
