package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
	"indexedrec/ir"
)

// gridSpec wraps a grid system as the solve spec specGrid2D would build.
func gridSpec(sys *ir.Grid2DSystem) *solveSpec {
	return &solveSpec{family: ir.FamilyGrid2D, grid: sys, data: ir.PlanData{Grid: sys}}
}

// randGrid draws a full-mask grid over the given semiring; tropical rings
// use small integer costs so every path sum is exact.
func randGrid(rng *rand.Rand, rows, cols int, semiring string) *ir.Grid2DSystem {
	n := rows * cols
	grid := func(scale float64, offset float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			if semiring == "" || semiring == "affine" {
				out[i] = (rng.Float64()*2-1)*scale + offset
			} else {
				out[i] = float64(rng.Intn(21) - 10)
			}
		}
		return out
	}
	edge := func(k int) []float64 {
		out := make([]float64, k)
		for i := range out {
			if semiring == "" || semiring == "affine" {
				out[i] = rng.Float64()*2 - 1
			} else {
				out[i] = float64(rng.Intn(11))
			}
		}
		return out
	}
	return &ir.Grid2DSystem{
		Rows: rows, Cols: cols, Semiring: semiring,
		A: grid(0.3, 0), B: grid(0.3, 0), Diag: grid(0.3, 0), C: grid(1, 0),
		North: edge(cols), West: edge(rows), NorthWest: 1,
	}
}

// gridReference solves sys locally through the public facade.
func gridReference(t testing.TB, sys *ir.Grid2DSystem) *ir.Grid2DResult {
	t.Helper()
	res, err := ir.SolveGrid2D(sys, ir.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGrid2DScatterMatchesLocal pipelines row bands across fleets of
// several sizes and requires the stitched result to be bit-identical to a
// local solve, with every band served remotely (no silent fallback).
func TestGrid2DScatterMatchesLocal(t *testing.T) {
	defer checkGoroutines(t)()
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3} {
		for _, ring := range []string{"", "minplus", "maxplus"} {
			co, workers, down := newFleet(t, n, nil)
			var shardHits atomic.Int64
			for _, tw := range workers {
				count := func(r *http.Request) bool {
					if strings.HasSuffix(r.URL.Path, "solve") && strings.Contains(r.URL.Path, "shard") {
						shardHits.Add(1)
					}
					return true
				}
				tw.intercept.Store(&count)
			}
			sys := randGrid(rng, 37, 23, ring)
			want := gridReference(t, sys)
			sol, err := co.Solve(context.Background(), gridSpec(sys))
			if err != nil {
				t.Fatalf("fleet=%d ring=%q: %v", n, ring, err)
			}
			assertSameSolution(t, sol, &ir.PlanSolution{Values: want.Values})
			if sol.Rounds != want.Rounds {
				t.Fatalf("fleet=%d ring=%q: rounds %d != %d", n, ring, sol.Rounds, want.Rounds)
			}
			if got := co.metrics.fallbacks.Value(); got != 0 {
				t.Fatalf("fleet=%d ring=%q: %d local fallbacks, want none", n, ring, got)
			}
			if hits := shardHits.Load(); hits < int64(n) {
				t.Fatalf("fleet=%d ring=%q: only %d shard requests for %d bands", n, ring, hits, n)
			}
			down()
		}
	}
}

// TestGrid2DMoreWorkersThanRows caps the band count at the row count so no
// worker receives an empty band.
func TestGrid2DMoreWorkersThanRows(t *testing.T) {
	defer checkGoroutines(t)()
	co, _, down := newFleet(t, 4, nil)
	defer down()
	sys := randGrid(rand.New(rand.NewSource(11)), 2, 29, "minplus")
	want := gridReference(t, sys)
	sol, err := co.Solve(context.Background(), gridSpec(sys))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, sol, &ir.PlanSolution{Values: want.Values})
}

// TestGrid2DNoWorkersFallback requires an empty fleet to degrade to a
// local solve with the same bits, counting one fallback.
func TestGrid2DNoWorkersFallback(t *testing.T) {
	defer checkGoroutines(t)()
	co, _, down := newFleet(t, 0, nil)
	defer down()
	sys := randGrid(rand.New(rand.NewSource(3)), 19, 31, "")
	want := gridReference(t, sys)
	sol, err := co.Solve(context.Background(), gridSpec(sys))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, sol, &ir.PlanSolution{Values: want.Values})
	if got := co.metrics.fallbacks.Value(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
}

// TestGrid2DWorkerCrashFallsBack kills every worker mid-pipeline and
// requires the coordinator to finish the solve locally, bit-identical.
func TestGrid2DWorkerCrashFallsBack(t *testing.T) {
	defer checkGoroutines(t)()
	co, workers, down := newFleet(t, 2, nil)
	defer down()
	for _, tw := range workers {
		die := func(r *http.Request) bool { return !strings.Contains(r.URL.Path, "shard") }
		tw.intercept.Store(&die)
	}
	sys := randGrid(rand.New(rand.NewSource(5)), 23, 17, "maxplus")
	want := gridReference(t, sys)
	sol, err := co.Solve(context.Background(), gridSpec(sys))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, sol, &ir.PlanSolution{Values: want.Values})
	if got := co.metrics.fallbacks.Value(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
}

// TestGrid2DFrontEndToEnd drives POST /v1/solve/grid2d on the coordinator
// through the typed client and checks the distributed answer against the
// local facade, plus the 422 mapping for non-finite solutions.
func TestGrid2DFrontEndToEnd(t *testing.T) {
	defer checkGoroutines(t)()
	co, _, down := newFleet(t, 2, nil)
	defer down()
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	c := client.New(front.URL)

	sys := randGrid(rand.New(rand.NewSource(9)), 29, 13, "minplus")
	want := gridReference(t, sys)
	resp, err := c.SolveGrid2D(context.Background(), server.Grid2DRequest{System: *sys})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != len(want.Values) {
		t.Fatalf("got %d values, want %d", len(resp.Values), len(want.Values))
	}
	for i := range want.Values {
		if resp.Values[i] != want.Values[i] {
			t.Fatalf("cell %d: distributed %v != local %v", i, resp.Values[i], want.Values[i])
		}
	}
	if resp.Rounds != want.Rounds || resp.Cells != want.Cells {
		t.Fatalf("rounds/cells (%d, %d) != (%d, %d)", resp.Rounds, resp.Cells, want.Rounds, want.Cells)
	}

	// Affine overflow surfaces as 422, the same class irserved reports.
	bad := randGrid(rand.New(rand.NewSource(2)), 40, 40, "")
	for i := range bad.A {
		bad.A[i] = 1e300
	}
	for i := range bad.C {
		bad.C[i] = 1e300
	}
	_, err = c.SolveGrid2D(context.Background(), server.Grid2DRequest{System: *bad})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422 APIError, got %v", err)
	}
}

// TestFrontJSONErrorSchema pins the coordinator's edge responses — unknown
// path, wrong method, and the unimplemented loop route — to the same JSON
// wire error schema the implemented endpoints speak, and decodes each the
// way the typed client does.
func TestFrontJSONErrorSchema(t *testing.T) {
	defer checkGoroutines(t)()
	co, _, down := newFleet(t, 0, nil)
	defer down()
	front := httptest.NewServer(co.Handler())
	defer front.Close()

	decode := func(t *testing.T, resp *http.Response) server.ErrorResponse {
		t.Helper()
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("body %q is not the JSON error schema: %v", body, err)
		}
		if er.Error == "" || er.Code != resp.StatusCode {
			t.Fatalf("decoded %+v, want non-empty error and code %d", er, resp.StatusCode)
		}
		return er
	}

	t.Run("unknown path 404", func(t *testing.T) {
		resp, err := http.Get(front.URL + "/v1/solve/no-such-family")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		er := decode(t, resp)
		if !strings.Contains(er.Error, "/v1/solve/no-such-family") {
			t.Fatalf("error %q does not name the path", er.Error)
		}
	})

	t.Run("wrong method 405", func(t *testing.T) {
		resp, err := http.Get(front.URL + server.APIPrefix + "grid2d")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
			t.Fatalf("Allow = %q, want POST", allow)
		}
		decode(t, resp)
	})

	t.Run("client decodes unimplemented loop", func(t *testing.T) {
		c := client.New(front.URL)
		_, err := c.SolveLoop(context.Background(), server.LoopRequest{Loop: "x"})
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("want APIError, got %v", err)
		}
		if apiErr.Status != http.StatusNotImplemented || !strings.Contains(apiErr.Message, "worker") {
			t.Fatalf("got %d %q, want 501 pointing at a worker", apiErr.Status, apiErr.Message)
		}
	})
}
