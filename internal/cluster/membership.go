package cluster

import (
	"sort"
	"time"
)

// Elastic membership. The fleet is a map of members that changes at
// runtime: static members come from Config.Workers and live for the
// coordinator's lifetime with probe-governed liveness, dynamic members
// self-register over POST /v1/cluster/register and stay only while their
// heartbeat lease is renewed. A missed lease marks the worker dead and
// removes it from the fleet (its shards re-home to the next rendezvous
// rank on the very next solve); a graceful drain deregisters explicitly,
// so SIGTERM'd workers leave without waiting out a lease. Every membership
// or liveness change bumps ircluster_rebalances_total — rendezvous hashing
// guarantees the change only re-homes the shards the departed (or
// arrived) worker owns, so survivors keep their plan/arena affinity.

// member returns the worker registered under name, or nil.
func (co *Coordinator) member(name string) *worker {
	co.mmu.RLock()
	defer co.mmu.RUnlock()
	return co.members[name]
}

// memberList snapshots the fleet sorted by name (stable view output).
func (co *Coordinator) memberList() []*worker {
	co.mmu.RLock()
	ws := make([]*worker, 0, len(co.members))
	for _, w := range co.members {
		ws = append(ws, w)
	}
	co.mmu.RUnlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].name < ws[j].name })
	return ws
}

// alive snapshots the currently-up members.
func (co *Coordinator) alive() []*worker {
	co.mmu.RLock()
	defer co.mmu.RUnlock()
	var ws []*worker
	for _, w := range co.members {
		if w.isUp() {
			ws = append(ws, w)
		}
	}
	return ws
}

// addMember inserts w if no member with its name exists, returning the
// resident member either way.
func (co *Coordinator) addMember(w *worker) (*worker, bool) {
	co.mmu.Lock()
	defer co.mmu.Unlock()
	if cur, ok := co.members[w.name]; ok {
		return cur, false
	}
	co.members[w.name] = w
	return w, true
}

// register admits (or refreshes) a dynamic member and returns its lease
// duration. Re-registration of a live member is a plain lease renewal;
// registration of a dead or unknown name is a membership change that
// re-ranks placement. Membership is checked before any worker is built, so
// a renewal never constructs a throwaway client or resets the resident
// member's breaker gauge (which may legitimately read open).
func (co *Coordinator) register(addr, version string) time.Duration {
	co.mmu.Lock()
	cur, resident := co.members[addr]
	if !resident {
		base := addr
		if !hasScheme(base) {
			base = "http://" + base
		}
		cur = co.newWorker(addr, base, true)
		co.members[addr] = cur
	}
	co.mmu.Unlock()

	cur.mu.Lock()
	wasUp := cur.up
	cur.up = true
	cur.lease = time.Now().Add(co.cfg.LeaseTTL)
	cur.dynamic = true
	if version != "" {
		cur.version = version
	}
	cur.mu.Unlock()
	co.metrics.workerUp.Set(1, cur.name)
	if !resident {
		co.cfg.Logger.Printf("ircluster: worker %s registered (version %s)", cur.name, orUnknown(version))
		co.fleetChanged()
	} else if !wasUp {
		co.cfg.Logger.Printf("ircluster: worker %s re-registered", cur.name)
		co.fleetChanged()
	}
	return co.cfg.LeaseTTL
}

// renew extends a registered member's lease, reporting false for unknown
// names (the worker should re-register).
func (co *Coordinator) renew(addr string) bool {
	w := co.member(addr)
	if w == nil {
		return false
	}
	w.mu.Lock()
	wasUp := w.up
	w.up = true
	w.lease = time.Now().Add(co.cfg.LeaseTTL)
	w.mu.Unlock()
	if !wasUp {
		co.metrics.workerUp.Set(1, addr)
		co.cfg.Logger.Printf("ircluster: worker %s back up (heartbeat)", addr)
		co.fleetChanged()
	}
	return true
}

// deregister removes a member on graceful drain. Static members are only
// marked down (their probe may resurrect them); dynamic ones leave the
// fleet entirely.
func (co *Coordinator) deregister(addr string) {
	w := co.member(addr)
	if w == nil {
		return
	}
	w.mu.Lock()
	dynamic := w.dynamic
	w.up = false
	w.mu.Unlock()
	co.metrics.workerUp.Set(0, addr)
	if dynamic {
		co.mmu.Lock()
		delete(co.members, addr)
		co.mmu.Unlock()
	}
	co.cfg.Logger.Printf("ircluster: worker %s deregistered (drain)", addr)
	co.fleetChanged()
}

// expireLeases removes dynamic members whose lease has lapsed — the
// missed-heartbeat failure detector. Returns how many members died.
func (co *Coordinator) expireLeases(now time.Time) int {
	var dead []*worker
	co.mmu.Lock()
	for name, w := range co.members {
		w.mu.Lock()
		expired := w.dynamic && now.After(w.lease)
		w.mu.Unlock()
		if expired {
			delete(co.members, name)
			dead = append(dead, w)
		}
	}
	co.mmu.Unlock()
	for _, w := range dead {
		co.metrics.workerUp.Set(0, w.name)
		co.cfg.Logger.Printf("ircluster: worker %s dead (missed lease)", w.name)
	}
	if len(dead) > 0 {
		co.fleetChanged()
	}
	return len(dead)
}

// leaseLoop runs the missed-lease detector at a fraction of the lease TTL
// until Close.
func (co *Coordinator) leaseLoop() {
	defer close(co.leaseDone)
	tick := co.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-co.probeCtx.Done():
			return
		case <-t.C:
			co.expireLeases(time.Now())
		}
	}
}

// fleetChanged records a membership/liveness transition: placement is
// re-ranked (rendezvous hashing moves only the affected worker's shards)
// and the members gauge refreshed.
func (co *Coordinator) fleetChanged() {
	co.metrics.rebalances.Inc()
	co.mmu.RLock()
	n := int64(len(co.members))
	co.mmu.RUnlock()
	co.metrics.members.Set(n)
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}
