package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
	"indexedrec/ir"
)

// Streaming sessions through the coordinator: the front-end speaks the same
// /v1/session API as a single irserved, pins each session to one worker by
// rendezvous rank on its plan fingerprint (so the worker holding the
// session's arena also tends to hold its compiled plan), and keeps the open
// request plus the ordered append log as the session's recovery snapshot.
// When the pinned worker dies, sheds, or forgot the session (restart, idle
// eviction), the coordinator re-homes the stream: it replays the open and
// every logged append — the fold is deterministic, so the rebuilt state is
// bit-identical — onto the next-ranked live worker, then applies the new
// append exactly once. An append is never blind-retried against an existing
// remote session, so a failure after the worker applied the batch can never
// double-apply it.

// streamEntry is the coordinator's record of one proxied session.
type streamEntry struct {
	// fp is the rendezvous pinning key: the opened structure's plan
	// fingerprint.
	fp string

	// mu serializes appends (and re-homes) for this session, keeping the
	// replay log an exact prefix-ordered history.
	mu       chan struct{} // 1-buffered; acquired by receive, released by send
	w        *worker
	remoteID string
	open     server.SessionOpenRequest
	log      []server.SessionAppendRequest
}

func (e *streamEntry) lock()   { <-e.mu }
func (e *streamEntry) unlock() { e.mu <- struct{}{} }

// sessionRoutes mounts the session pass-through endpoints.
func (co *Coordinator) sessionRoutes() {
	co.handle("POST", server.SessionPrefix, co.handleSessionOpen)
	co.handle("POST", server.SessionPrefix+"/{id}/append", co.handleSessionAppend)
	co.handle("GET", server.SessionPrefix+"/{id}", co.handleSessionGet)
	co.handle("DELETE", server.SessionPrefix+"/{id}", co.handleSessionDelete)
}

// sessionPinKey computes the open request's plan fingerprint — the same key
// the shard scatter path uses, so a session lands on the worker whose plan
// cache is already hot for its structure.
func (co *Coordinator) sessionPinKey(req *server.SessionOpenRequest) (string, error) {
	switch req.Family {
	case "linear", "moebius":
		return ir.PlanFingerprint(ir.FamilyMoebius, len(req.G), req.M, req.G, req.F, nil, 0), nil
	}
	sys, err := req.System.System()
	if err != nil {
		return "", err
	}
	fam := ir.FamilyGeneral
	switch req.Family {
	case "ordinary":
		fam = ir.FamilyOrdinary
	case "general":
	case "auto", "":
		if sys.Ordinary() && sys.GDistinct() {
			fam = ir.FamilyOrdinary
		}
	default:
		return "", fmt.Errorf("unknown family %q", req.Family)
	}
	if fam == ir.FamilyOrdinary {
		return ir.PlanFingerprint(fam, sys.N, sys.M, sys.G, sys.F, nil, 0), nil
	}
	return ir.PlanFingerprint(fam, sys.N, sys.M, sys.G, sys.F, sys.H, co.cfg.MaxExponentBits), nil
}

func newSessionID() (string, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(buf[:]), nil
}

// writeSessionErr renders a pass-through failure: worker APIErrors keep
// their status and message, anything else is a coordinator-side 502.
func (co *Coordinator) writeSessionErr(w http.ResponseWriter, endpoint string, err error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		co.writeError(w, endpoint, apiErr.Status, apiErr.Message)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		co.writeError(w, endpoint, http.StatusGatewayTimeout, err.Error())
		return
	}
	co.writeError(w, endpoint, http.StatusBadGateway, err.Error())
}

func (co *Coordinator) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session_open"
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		co.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	var req server.SessionOpenRequest
	if err := json.Unmarshal(body, &req); err != nil {
		co.writeError(w, endpoint, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	fp, err := co.sessionPinKey(&req)
	if err != nil {
		co.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := co.requestContext(r, req.Opts.TimeoutMs)
	defer cancel()
	ranked := rankWorkers(co.alive(), fp, 0)
	if len(ranked) == 0 {
		co.writeError(w, endpoint, http.StatusServiceUnavailable, ErrNoWorkers.Error())
		return
	}
	var lastErr error
	for _, wk := range ranked {
		settle, ok := wk.br.allow()
		if !ok {
			continue
		}
		resp, err := wk.client.OpenSession(ctx, req)
		if err == nil {
			settle(outcomeSuccess)
			id, err := newSessionID()
			if err != nil {
				co.writeError(w, endpoint, http.StatusInternalServerError, err.Error())
				return
			}
			e := &streamEntry{
				fp: fp, mu: make(chan struct{}, 1),
				w: wk, remoteID: resp.ID, open: req,
			}
			e.unlock()
			co.smu.Lock()
			co.sessions[id] = e
			co.metrics.sessions.Set(int64(len(co.sessions)))
			co.smu.Unlock()
			resp.ID = id
			co.writeJSON(w, endpoint, http.StatusOK, resp)
			return
		}
		if !retryable(err) {
			settle(outcomeAbandoned)
			co.writeSessionErr(w, endpoint, err)
			return
		}
		settle(outcomeFailure)
		co.noteFailure(wk, err)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoWorkers
	}
	co.writeSessionErr(w, endpoint, lastErr)
}

// entry looks up a proxied session by its public ID.
func (co *Coordinator) entry(id string) *streamEntry {
	co.smu.Lock()
	defer co.smu.Unlock()
	return co.sessions[id]
}

// rehome rebuilds the session on the best-ranked live worker by replaying
// its open request and full append log; e is locked by the caller. The
// failed worker is skipped unless the failure was a remote 404 (the worker
// is alive but forgot the session — replaying onto it is fine).
func (co *Coordinator) rehome(ctx context.Context, e *streamEntry, skip *worker) error {
	var lastErr error
candidates:
	for _, wk := range rankWorkers(co.alive(), e.fp, 0) {
		if wk == skip {
			continue
		}
		settle, ok := wk.br.allow()
		if !ok {
			continue
		}
		resp, err := wk.client.OpenSession(ctx, e.open)
		if err != nil {
			settle(outcomeFailure)
			co.noteFailure(wk, err)
			lastErr = err
			continue
		}
		for _, b := range e.log {
			if _, err := wk.client.Append(ctx, resp.ID, b); err != nil {
				settle(outcomeFailure)
				co.noteFailure(wk, err)
				lastErr = err
				continue candidates
			}
		}
		settle(outcomeSuccess)
		e.w, e.remoteID = wk, resp.ID
		co.metrics.sessionRehomes.Inc()
		co.cfg.Logger.Printf("ircluster: session re-homed to worker %s (%d appends replayed)", wk.name, len(e.log))
		return nil
	}
	if lastErr == nil {
		lastErr = ErrNoWorkers
	}
	return lastErr
}

// remoteGone reports a worker response that means the worker no longer
// holds the session (restart, idle eviction) even though it is healthy.
func remoteGone(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

func (co *Coordinator) handleSessionAppend(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session_append"
	e := co.entry(r.PathValue("id"))
	if e == nil {
		co.writeError(w, endpoint, http.StatusNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		co.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	var req server.SessionAppendRequest
	if err := json.Unmarshal(body, &req); err != nil {
		co.writeError(w, endpoint, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	ctx, cancel := co.requestContext(r, req.Opts.TimeoutMs)
	defer cancel()
	e.lock()
	defer e.unlock()

	// First try the pinned worker; any worker-attributable failure (or a
	// healthy worker that forgot the session) triggers a re-home with
	// replay, after which the batch is applied exactly once on the rebuilt
	// state.
	if e.w.isUp() {
		resp, err := e.w.client.Append(ctx, e.remoteID, req)
		if err == nil {
			e.log = append(e.log, req)
			co.writeJSON(w, endpoint, http.StatusOK, resp)
			return
		}
		if !retryable(err) && !remoteGone(err) {
			co.writeSessionErr(w, endpoint, err)
			return
		}
		co.noteFailure(e.w, err)
		skip := e.w
		if remoteGone(err) {
			skip = nil
		}
		if err := co.rehome(ctx, e, skip); err != nil {
			co.writeSessionErr(w, endpoint, err)
			return
		}
	} else if err := co.rehome(ctx, e, nil); err != nil {
		co.writeSessionErr(w, endpoint, err)
		return
	}
	resp, err := e.w.client.Append(ctx, e.remoteID, req)
	if err != nil {
		co.writeSessionErr(w, endpoint, err)
		return
	}
	e.log = append(e.log, req)
	co.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (co *Coordinator) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session_get"
	id := r.PathValue("id")
	e := co.entry(id)
	if e == nil {
		co.writeError(w, endpoint, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	ctx, cancel := co.requestContext(r, 0)
	defer cancel()
	e.lock()
	defer e.unlock()
	if !e.w.isUp() || e.remoteID == "" {
		if err := co.rehome(ctx, e, nil); err != nil {
			co.writeSessionErr(w, endpoint, err)
			return
		}
	}
	resp, err := e.w.client.GetSession(ctx, e.remoteID)
	if err != nil && (retryable(err) || remoteGone(err)) {
		co.noteFailure(e.w, err)
		skip := e.w
		if remoteGone(err) {
			skip = nil
		}
		if rerr := co.rehome(ctx, e, skip); rerr != nil {
			co.writeSessionErr(w, endpoint, rerr)
			return
		}
		resp, err = e.w.client.GetSession(ctx, e.remoteID)
	}
	if err != nil {
		co.writeSessionErr(w, endpoint, err)
		return
	}
	resp.ID = id
	co.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (co *Coordinator) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session_delete"
	id := r.PathValue("id")
	co.smu.Lock()
	e := co.sessions[id]
	if e != nil {
		delete(co.sessions, id)
		co.metrics.sessions.Set(int64(len(co.sessions)))
	}
	co.smu.Unlock()
	if e == nil {
		co.writeError(w, endpoint, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	// Best-effort remote close: the worker's own idle TTL collects the
	// session anyway if this misses.
	ctx, cancel := co.requestContext(r, 0)
	defer cancel()
	e.lock()
	_ = e.w.client.CloseSession(ctx, e.remoteID)
	e.unlock()
	w.WriteHeader(http.StatusNoContent)
	co.metrics.requests.Inc(endpoint, "204")
}
