package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"indexedrec/internal/server"
	"indexedrec/ir"
)

// The grid2d scatter path. A 2-D grid's rows have a true data dependency —
// band b's first row reads band b-1's last — so unlike the 1-D families the
// coordinator cannot run shards concurrently. It pipelines contiguous row
// bands instead: each band ships as a self-contained sub-grid whose North
// halo is the previous band's last output row (and whose NorthWest corner
// is the original West cell above the band), giving memory scale-out — the
// full coefficient grids never have to fit one worker — plus plan-cache
// affinity per band shape, not latency speedup. Per-band values are
// schedule-independent, so the stitched result is bit-identical to a local
// solve. Any band failure degrades the whole solve to local execution,
// exactly like scatter's ErrNoWorkers parity.

// solveGrid2D runs a distributed grid solve with local fallback, the
// grid-family twin of Solve's scatter-or-fallback arm.
func (co *Coordinator) solveGrid2D(ctx context.Context, p *ir.Plan, spec *solveSpec) (*ir.PlanSolution, error) {
	sol, err := co.scatterGrid2D(ctx, p, spec)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		co.metrics.fallbacks.Inc()
		if !errors.Is(err, ErrNoWorkers) {
			co.cfg.Logger.Printf("ircluster: grid scatter failed (%v); solving locally", err)
		}
		return p.SolveCtx(ctx, spec.data)
	}
	return sol, nil
}

// bandGrid cuts rows [r0, r1) of sys into a self-contained sub-grid, with
// north/nw carrying the halo from the rows above (the original boundary for
// the first band, the previous band's output afterwards). Slices alias sys.
func bandGrid(sys *ir.Grid2DSystem, r0, r1 int, north []float64, nw float64) *ir.Grid2DSystem {
	cols := sys.Cols
	cut := func(g []float64) []float64 {
		if g == nil {
			return nil
		}
		return g[r0*cols : r1*cols]
	}
	return &ir.Grid2DSystem{
		Rows: r1 - r0, Cols: cols, Semiring: sys.Semiring,
		A: cut(sys.A), B: cut(sys.B), Diag: cut(sys.Diag), C: cut(sys.C),
		North: north, West: sys.West[r0:r1], NorthWest: nw,
	}
}

// scatterGrid2D executes the band pipeline over the live fleet. Bands go
// through the same solveShard machinery as 1-D shards — rendezvous worker
// ranking (by plan fingerprint and band index), circuit breakers, a shared
// per-solve retry budget, and hedged duplicates — one band at a time, each
// seeded with the halo row the previous band produced.
func (co *Coordinator) scatterGrid2D(ctx context.Context, p *ir.Plan, spec *solveSpec) (*ir.PlanSolution, error) {
	ws := co.alive()
	if len(ws) == 0 {
		return nil, ErrNoWorkers
	}
	sys := spec.grid
	rows, cols := sys.Rows, sys.Cols
	nb := min(len(ws), rows)
	base, err := shardRequest(spec, ctx)
	if err != nil {
		return nil, err
	}
	var budget atomic.Int64
	budget.Store(co.retryBudget(nb))

	out := make([]float64, rows*cols)
	north, nw := sys.North, sys.NorthWest
	for b := 0; b < nb; b++ {
		r0, r1 := rows*b/nb, rows*(b+1)/nb
		req := base
		req.Shard = server.ShardWire{Lo: r0, Hi: r1}
		req.Grid = bandGrid(sys, r0, r1, north, nw)
		prefs := rankWorkers(ws, p.Fingerprint(), b)
		resp, err := co.solveShard(ctx, req, prefs, &budget)
		if err != nil {
			return nil, fmt.Errorf("band %d [%d, %d): %w", b, r0, r1, err)
		}
		if len(resp.Values) != (r1-r0)*cols {
			return nil, fmt.Errorf("band %d [%d, %d): worker returned %d values, want %d",
				b, r0, r1, len(resp.Values), (r1-r0)*cols)
		}
		copy(out[r0*cols:r1*cols], resp.Values)
		north = out[(r1-1)*cols : r1*cols]
		nw = sys.West[r1-1]
	}
	return &ir.PlanSolution{Values: out, Rounds: rows + cols - 1}, nil
}
