// Package cluster is the distributed-solve layer over irserved workers: a
// coordinator that compiles (or cache-loads) a solve plan, cuts its shard
// domain along the paper's own parallel structure — chains of the ordinary
// write-chain forest, output cells for the general and Möbius families —
// scatters the shards to workers' POST /v1/shard/solve, and gathers the
// slices back into a solution bit-identical to ir.Plan.SolveCtx.
//
// Placement uses rendezvous hashing on (plan fingerprint, shard index), so
// a plan's shards spread across the fleet yet stay sticky to the same
// workers across requests, keeping the workers' fingerprint-keyed plan
// caches hot. Failures are handled by bounded retries with jittered
// backoff onto the next-ranked worker (which is also how a dead worker's
// shards re-scatter), stragglers by a single hedged duplicate request, and
// a fleet with no reachable workers by graceful degradation to a local
// in-process solve. Stdlib only, like everything else in the repo.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Workers lists worker base URLs ("http://host:port"). Bare host:port
	// entries get an http:// prefix.
	Workers []string
	// MaxRetries bounds per-shard re-sends after the first attempt
	// (default 3).
	MaxRetries int
	// RetryBackoff is the base backoff between a shard's attempts; each
	// retry waits backoff·attempt plus up to 50% jitter (default 50ms).
	RetryBackoff time.Duration
	// HedgeAfter is how long a shard request may run before a duplicate is
	// hedged onto the next-ranked worker (default 2s; 0 keeps the default,
	// negative disables hedging).
	HedgeAfter time.Duration
	// ProbeInterval is the health-probe period (default 5s; negative
	// disables background probing).
	ProbeInterval time.Duration
	// RequestTimeout caps one shard HTTP request (default 60s); the solve
	// ctx's deadline still applies on top.
	RequestTimeout time.Duration
	// PlanCacheBytes bounds the coordinator's own compiled-plan cache
	// (default 256 MiB, negative disables).
	PlanCacheBytes int64
	// MaxN bounds accepted system sizes on the HTTP front-end (default
	// 4,194,304, as irserved).
	MaxN int
	// MaxExponentBits caps CAP trace-exponent growth for general solves
	// (default 16384, as irserved); requests may lower it but not raise it.
	MaxExponentBits int
	// Procs bounds local-fallback solver parallelism (default GOMAXPROCS
	// via the solvers' own defaulting).
	Procs int
	// Logger receives worker lifecycle events; nil means log.Default().
	Logger *log.Logger
}

func (c *Config) setDefaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 2 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 5 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.PlanCacheBytes == 0 {
		c.PlanCacheBytes = 256 << 20
	}
	if c.MaxN == 0 {
		c.MaxN = 4 << 20
	}
	if c.MaxExponentBits <= 0 {
		c.MaxExponentBits = 16384
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
}

// worker is one irserved instance in the fleet.
type worker struct {
	name   string // display name (the configured address)
	client *client.Client

	mu      sync.Mutex
	up      bool
	version string // reported at registration, for mixed-fleet diagnosis
}

// setUp transitions the worker's liveness, returning whether it changed.
func (w *worker) setUp(up bool) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.up == up {
		return false
	}
	w.up = up
	return true
}

func (w *worker) isUp() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.up
}

// Coordinator owns the fleet view and executes distributed solves. Create
// with New, serve its Handler, stop with Close.
type Coordinator struct {
	cfg     Config
	reg     *server.Registry
	metrics *clusterMetrics
	workers []*worker
	plans   *server.PlanCache
	mux     *http.ServeMux

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// New builds a Coordinator, registers its workers (one synchronous probe
// each, logging the worker's reported build version), and starts the
// background health prober.
func New(cfg Config) *Coordinator {
	cfg.setDefaults()
	co := &Coordinator{cfg: cfg, reg: server.NewRegistry(), probeDone: make(chan struct{})}
	co.metrics = newClusterMetrics(co.reg)
	if cfg.PlanCacheBytes > 0 {
		co.plans = server.NewPlanCache(cfg.PlanCacheBytes, co.metrics.planCacheMetrics())
	}
	for _, addr := range cfg.Workers {
		base := addr
		if !hasScheme(base) {
			base = "http://" + base
		}
		co.workers = append(co.workers, &worker{
			name:   addr,
			client: client.NewPooled(base, cfg.RequestTimeout),
		})
	}
	co.probeCtx, co.probeCancel = context.WithCancel(context.Background())
	for _, w := range co.workers {
		co.probe(co.probeCtx, w)
	}
	go co.probeLoop()
	co.routes()
	return co
}

func hasScheme(addr string) bool {
	for i := 0; i < len(addr); i++ {
		switch addr[i] {
		case ':':
			return i+2 < len(addr) && addr[i+1] == '/' && addr[i+2] == '/'
		case '/', '?', '#':
			return false
		}
	}
	return false
}

// probe checks one worker's health, updating liveness and — on a fresh
// registration or a down→up transition — logging its build version.
func (co *Coordinator) probe(ctx context.Context, w *worker) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	err := w.client.Healthz(ctx)
	up := err == nil
	changed := w.setUp(up)
	co.metrics.workerUp.Set(boolGauge(up), w.name)
	if !changed {
		return
	}
	if !up {
		co.cfg.Logger.Printf("ircluster: worker %s down: %v", w.name, err)
		return
	}
	version := "(unknown)"
	if v, err := w.client.Version(ctx); err == nil {
		version = fmt.Sprintf("%s go %s rev %.12s", v.Version, v.Go, v.Revision)
		w.mu.Lock()
		w.version = version
		w.mu.Unlock()
	}
	co.cfg.Logger.Printf("ircluster: worker %s up, version %s", w.name, version)
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// probeLoop re-probes the fleet every ProbeInterval until Close.
func (co *Coordinator) probeLoop() {
	defer close(co.probeDone)
	if co.cfg.ProbeInterval < 0 {
		<-co.probeCtx.Done()
		return
	}
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.probeCtx.Done():
			return
		case <-t.C:
			for _, w := range co.workers {
				co.probe(co.probeCtx, w)
			}
		}
	}
}

// alive snapshots the currently-up workers.
func (co *Coordinator) alive() []*worker {
	var ws []*worker
	for _, w := range co.workers {
		if w.isUp() {
			ws = append(ws, w)
		}
	}
	return ws
}

// Registry exposes the coordinator's metrics registry.
func (co *Coordinator) Registry() *server.Registry { return co.reg }

// Close stops the health prober. In-flight solves finish under their own
// contexts.
func (co *Coordinator) Close() {
	co.probeCancel()
	<-co.probeDone
}

// ErrNoWorkers reports a scatter attempted against an empty or fully-down
// fleet; Solve converts it into a local fallback.
var ErrNoWorkers = errors.New("ircluster: no reachable workers")
