// Package cluster is the distributed-solve layer over irserved workers: a
// coordinator that compiles (or cache-loads) a solve plan, cuts its shard
// domain along the paper's own parallel structure — chains of the ordinary
// write-chain forest, output cells for the general and Möbius families —
// scatters the shards to workers' POST /v1/shard/solve, and gathers the
// slices back into a solution bit-identical to ir.Plan.SolveCtx.
//
// The fleet is elastic: besides the static Config.Workers list, workers
// self-register over POST /v1/cluster/register and hold heartbeat leases; a
// missed lease removes the worker (its shards re-home to the next
// rendezvous rank on the next solve) and a graceful drain deregisters it
// explicitly. Placement uses rendezvous hashing on (plan fingerprint,
// shard), so membership changes only move the departed or arrived worker's
// shards while survivors keep their plan/arena affinity. Each worker sits
// behind a circuit breaker (closed → open on consecutive failures →
// half-open probe); failures are retried with jittered backoff onto the
// next-ranked worker under a per-solve retry budget, honoring Retry-After
// hints from shedding workers. Stragglers get a single hedged duplicate
// whose loser is cancelled as soon as a winner lands, and a fleet with no
// reachable workers degrades to a local in-process solve. Stdlib only,
// like everything else in the repo.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Workers lists static worker base URLs ("http://host:port"). Bare
	// host:port entries get an http:// prefix. The list may be empty: an
	// elastic fleet populates itself through /v1/cluster/register.
	Workers []string
	// MaxRetries bounds per-shard re-sends after the first attempt
	// (default 3); RetryBudget bounds re-sends across a whole solve
	// (default 4 + 2·shards, negative disables retries entirely).
	MaxRetries int
	// RetryBudget is the per-solve retry budget shared by all of a
	// solve's shards (0 selects the 4 + 2·shards default; negative
	// disables retries).
	RetryBudget int
	// RetryBackoff is the base backoff between a shard's attempts; each
	// retry waits backoff·attempt plus up to 50% jitter (default 50ms). A
	// shedding worker's Retry-After hint stretches the wait up to
	// MaxRetryAfter.
	RetryBackoff time.Duration
	// MaxRetryAfter caps how long a worker's Retry-After hint can stretch
	// one backoff (default 2s).
	MaxRetryAfter time.Duration
	// HedgeAfter is how long a shard request may run before a duplicate is
	// hedged onto the next-ranked worker (default 2s; 0 keeps the default,
	// negative disables hedging).
	HedgeAfter time.Duration
	// ProbeInterval is the health-probe period for static workers
	// (default 5s; negative disables background probing). Self-registered
	// workers are governed by their lease instead.
	ProbeInterval time.Duration
	// LeaseTTL is how long a self-registered worker stays in the fleet
	// without a heartbeat (default 5s, minimum 100ms). Workers heartbeat
	// at TTL/3.
	LeaseTTL time.Duration
	// ClusterToken, when non-empty, is the shared secret the membership
	// endpoints (register/heartbeat/deregister) require in the
	// X-IR-Cluster-Token header; requests without it answer 401, so only
	// holders of the token can add or remove fleet members. Leave empty
	// ONLY when the cluster API is reachable solely from a trusted network:
	// an open membership API lets anyone route shard payloads to an
	// arbitrary address or deregister legitimate workers.
	ClusterToken string
	// BreakerThreshold is how many consecutive worker-attributable
	// failures open a worker's circuit breaker (default 3; negative
	// disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// its half-open probe (default 5s).
	BreakerCooldown time.Duration
	// RequestTimeout caps one shard HTTP request (default 60s); the solve
	// ctx's deadline still applies on top.
	RequestTimeout time.Duration
	// PlanCacheBytes bounds the coordinator's own compiled-plan cache
	// (default 256 MiB, negative disables).
	PlanCacheBytes int64
	// MaxN bounds accepted system sizes on the HTTP front-end (default
	// 4,194,304, as irserved).
	MaxN int
	// MaxExponentBits caps CAP trace-exponent growth for general solves
	// (default 16384, as irserved); requests may lower it but not raise it.
	MaxExponentBits int
	// Procs bounds local-fallback solver parallelism (default GOMAXPROCS
	// via the solvers' own defaulting).
	Procs int
	// Logger receives worker lifecycle events; nil means log.Default().
	Logger *log.Logger
}

func (c *Config) setDefaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = 2 * time.Second
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 2 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 5 * time.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.LeaseTTL < 100*time.Millisecond {
		c.LeaseTTL = 100 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0 // disabled
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.PlanCacheBytes == 0 {
		c.PlanCacheBytes = 256 << 20
	}
	if c.MaxN == 0 {
		c.MaxN = 4 << 20
	}
	if c.MaxExponentBits <= 0 {
		c.MaxExponentBits = 16384
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
}

// worker is one irserved instance in the fleet.
type worker struct {
	name   string // display name and membership key (the advertised address)
	client *client.Client
	br     *breaker

	mu      sync.Mutex
	up      bool
	version string // reported at registration, for mixed-fleet diagnosis
	// dynamic marks a self-registered member whose liveness is governed by
	// its heartbeat lease; static members are probe-governed instead.
	dynamic bool
	lease   time.Time // lease deadline; meaningful only when dynamic
}

// setUp transitions the worker's liveness, returning whether it changed.
func (w *worker) setUp(up bool) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.up == up {
		return false
	}
	w.up = up
	return true
}

func (w *worker) isUp() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.up
}

// Coordinator owns the fleet view and executes distributed solves. Create
// with New, serve its Handler, stop with Close.
type Coordinator struct {
	cfg     Config
	reg     *server.Registry
	metrics *clusterMetrics
	plans   *server.PlanCache
	mux     *http.ServeMux
	// allowed maps registered route paths to their methods, feeding the
	// JSON 404/405 fallbacks (see fallbackRoutes).
	allowed map[string][]string

	mmu     sync.RWMutex
	members map[string]*worker

	smu      sync.Mutex
	sessions map[string]*streamEntry

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeDone   chan struct{}
	leaseDone   chan struct{}
}

// New builds a Coordinator, registers its static workers (one synchronous
// probe each, logging the worker's reported build version), and starts the
// background health prober and missed-lease detector. Elastic members join
// later through the registration endpoints.
func New(cfg Config) *Coordinator {
	cfg.setDefaults()
	co := &Coordinator{
		cfg:       cfg,
		reg:       server.NewRegistry(),
		members:   make(map[string]*worker),
		sessions:  make(map[string]*streamEntry),
		probeDone: make(chan struct{}),
		leaseDone: make(chan struct{}),
	}
	co.metrics = newClusterMetrics(co.reg)
	if cfg.PlanCacheBytes > 0 {
		co.plans = server.NewPlanCache(cfg.PlanCacheBytes, co.metrics.planCacheMetrics())
	}
	for _, addr := range cfg.Workers {
		base := addr
		if !hasScheme(base) {
			base = "http://" + base
		}
		co.addMember(co.newWorker(addr, base, false))
	}
	co.probeCtx, co.probeCancel = context.WithCancel(context.Background())
	for _, w := range co.memberList() {
		co.probe(co.probeCtx, w)
	}
	co.metrics.members.Set(int64(len(co.members)))
	go co.probeLoop()
	go co.leaseLoop()
	co.routes()
	return co
}

// newWorker builds a member (static or dynamic) with its pooled client and
// circuit breaker wired to the breaker metrics.
func (co *Coordinator) newWorker(name, base string, dynamic bool) *worker {
	w := &worker{
		name:    name,
		client:  client.NewPooled(base, co.cfg.RequestTimeout),
		dynamic: dynamic,
	}
	w.br = newBreaker(co.cfg.BreakerThreshold, co.cfg.BreakerCooldown, func(state int) {
		co.metrics.breakerState.Set(int64(state), name)
		if state == breakerOpen {
			co.metrics.breakerOpens.Inc()
			co.cfg.Logger.Printf("ircluster: worker %s breaker open", name)
		}
	})
	co.metrics.breakerState.Set(breakerClosed, name)
	return w
}

func hasScheme(addr string) bool {
	for i := 0; i < len(addr); i++ {
		switch addr[i] {
		case ':':
			return i+2 < len(addr) && addr[i+1] == '/' && addr[i+2] == '/'
		case '/', '?', '#':
			return false
		}
	}
	return false
}

// probe checks one static worker's health, updating liveness and — on a
// fresh registration or a down→up transition — logging its build version.
// Dynamic members are lease-governed and skipped.
func (co *Coordinator) probe(ctx context.Context, w *worker) {
	w.mu.Lock()
	dynamic := w.dynamic
	w.mu.Unlock()
	if dynamic {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	err := w.client.Healthz(ctx)
	up := err == nil
	changed := w.setUp(up)
	co.metrics.workerUp.Set(boolGauge(up), w.name)
	if !changed {
		return
	}
	co.fleetChanged()
	if !up {
		co.cfg.Logger.Printf("ircluster: worker %s down: %v", w.name, err)
		return
	}
	version := "(unknown)"
	if v, err := w.client.Version(ctx); err == nil {
		version = fmt.Sprintf("%s go %s rev %.12s", v.Version, v.Go, v.Revision)
		w.mu.Lock()
		w.version = version
		w.mu.Unlock()
	}
	co.cfg.Logger.Printf("ircluster: worker %s up, version %s", w.name, version)
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// probeLoop re-probes the static fleet every ProbeInterval until Close.
func (co *Coordinator) probeLoop() {
	defer close(co.probeDone)
	if co.cfg.ProbeInterval < 0 {
		<-co.probeCtx.Done()
		return
	}
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.probeCtx.Done():
			return
		case <-t.C:
			for _, w := range co.memberList() {
				co.probe(co.probeCtx, w)
			}
		}
	}
}

// Registry exposes the coordinator's metrics registry.
func (co *Coordinator) Registry() *server.Registry { return co.reg }

// Close stops the health prober and lease detector. In-flight solves
// finish under their own contexts.
func (co *Coordinator) Close() {
	co.probeCancel()
	<-co.probeDone
	<-co.leaseDone
}

// ErrNoWorkers reports a scatter attempted against an empty or fully-down
// fleet; Solve converts it into a local fallback.
var ErrNoWorkers = errors.New("ircluster: no reachable workers")
