package cluster

import (
	"indexedrec/internal/server"
)

// clusterMetrics is the coordinator's observability surface, registered on
// the coordinator's own Registry and rendered by GET /metrics in the same
// hand-rolled exposition format irserved uses.
type clusterMetrics struct {
	shards       *server.Counter      // ircluster_shards_total
	retries      *server.Counter      // ircluster_retries_total
	hedges       *server.Counter      // ircluster_hedges_total
	fallbacks    *server.Counter      // ircluster_local_fallbacks_total
	workerUp     *server.GaugeVec     // ircluster_worker_up{worker}
	members      *server.Gauge        // ircluster_members
	rebalances   *server.Counter      // ircluster_rebalances_total
	breakerState *server.GaugeVec     // ircluster_breaker_state{worker}
	breakerOpens *server.Counter      // ircluster_breaker_opens_total
	shardLatency *server.Histogram    // ircluster_shard_latency_seconds
	requests     *server.CounterVec   // ircluster_requests_total{endpoint,code}
	solveLatency *server.HistogramVec // ircluster_solve_seconds{endpoint}

	sessions       *server.Gauge   // ircluster_sessions
	sessionRehomes *server.Counter // ircluster_session_rehomes_total

	planHits, planMisses, planEvictions *server.Counter
	planBytes                           *server.Gauge
}

func newClusterMetrics(reg *server.Registry) *clusterMetrics {
	latencyBounds := []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60}
	return &clusterMetrics{
		shards: reg.NewCounter("ircluster_shards_total",
			"Shards scattered to workers (every attempt's first send; retries and hedges counted separately)."),
		retries: reg.NewCounter("ircluster_retries_total",
			"Shard attempts re-sent after a failure, including re-scatters off dead workers."),
		hedges: reg.NewCounter("ircluster_hedges_total",
			"Duplicate shard requests hedged onto a second worker for stragglers."),
		fallbacks: reg.NewCounter("ircluster_local_fallbacks_total",
			"Solves executed locally because no worker was reachable or a scatter failed."),
		workerUp: reg.NewGaugeVec("ircluster_worker_up",
			"Worker liveness (1 = probe succeeded or heartbeat lease held).", "worker"),
		members: reg.NewGauge("ircluster_members",
			"Workers currently in the fleet view (static + lease-holding registered)."),
		rebalances: reg.NewCounter("ircluster_rebalances_total",
			"Membership or liveness changes that re-ranked rendezvous shard placement."),
		breakerState: reg.NewGaugeVec("ircluster_breaker_state",
			"Per-worker circuit-breaker state (0 = closed, 1 = half-open, 2 = open).", "worker"),
		breakerOpens: reg.NewCounter("ircluster_breaker_opens_total",
			"Circuit-breaker trips from closed or half-open to open."),
		shardLatency: reg.NewHistogram("ircluster_shard_latency_seconds",
			"Per-shard round-trip time, successful attempts.", latencyBounds),
		requests: reg.NewCounterVec("ircluster_requests_total",
			"Coordinator HTTP responses by endpoint and status.", "endpoint", "code"),
		solveLatency: reg.NewHistogramVec("ircluster_solve_seconds",
			"End-to-end distributed solve latency by endpoint.", latencyBounds, "endpoint"),
		sessions: reg.NewGauge("ircluster_sessions",
			"Streaming sessions currently proxied through the coordinator."),
		sessionRehomes: reg.NewCounter("ircluster_session_rehomes_total",
			"Sessions rebuilt on another worker by replaying their append log."),
		planHits: reg.NewCounter("ircluster_plan_cache_hits_total",
			"Coordinator plan-cache hits."),
		planMisses: reg.NewCounter("ircluster_plan_cache_misses_total",
			"Coordinator plan-cache misses."),
		planEvictions: reg.NewCounter("ircluster_plan_cache_evictions_total",
			"Coordinator plan-cache evictions."),
		planBytes: reg.NewGauge("ircluster_plan_cache_bytes",
			"Resident bytes of the coordinator's cached plans."),
	}
}

func (m *clusterMetrics) planCacheMetrics() server.PlanCacheMetrics {
	return server.PlanCacheMetrics{
		Hits:      m.planHits,
		Misses:    m.planMisses,
		Evictions: m.planEvictions,
		Bytes:     m.planBytes,
	}
}
