package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
	"indexedrec/ir"
)

// solveSpec is one distributed solve, family-dispatched: sys for the
// ordinary/general families, (m, g, f) for Möbius, data for the values.
type solveSpec struct {
	family ir.Family
	sys    *ir.System // ordinary / general
	// sparse, when set, marks an ordinary/general solve in the compressed
	// encoding: the plan is compiled from the compact system (sys then
	// aliases sparse.Compact) and shard payloads ship the sparse wire form,
	// so scatter traffic is O(n) however large the global array.
	sparse *ir.SparseSystem
	m      int              // moebius
	g, f   []int            // moebius
	grid   *ir.Grid2DSystem // grid2d
	bits   int              // general: effective MaxExponentBits (compile-time)
	data   ir.PlanData
	// timeoutMs is the client's requested deadline (the wire option is not
	// part of ir.SolveOptions; the coordinator applies it to the solve ctx).
	timeoutMs int
}

// planFor compiles or cache-loads the spec's plan on the coordinator. The
// coordinator needs the plan itself — not just its fingerprint — because
// Partition and MergeShards read the compiled structure.
func (co *Coordinator) planFor(ctx context.Context, spec *solveSpec) (*ir.Plan, error) {
	if spec.family == ir.FamilyMoebius {
		fp := ir.PlanFingerprint(ir.FamilyMoebius, len(spec.g), spec.m, spec.g, spec.f, nil, 0)
		return server.PlanFor(co.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
			return ir.CompileMoebiusCtx(ctx, spec.m, spec.g, spec.f)
		})
	}
	if spec.family == ir.FamilyGrid2D {
		fp, err := ir.Grid2DFingerprint(spec.grid)
		if err != nil {
			return nil, err
		}
		return server.PlanFor(co.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
			return ir.CompileGrid2DCtx(ctx, spec.grid)
		})
	}
	if spec.sparse != nil {
		// One fingerprint for the whole solve: every shard of a sparse
		// scatter shares it, so rendezvous plan affinity warms workers with
		// one compact plan exactly as for dense scatters.
		fp := ir.SparseFingerprint(spec.family, spec.sparse, spec.bits)
		return server.PlanFor(co.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
			return ir.CompileSparseCtx(ctx, spec.sparse, ir.CompileOptions{
				Family: spec.family, Procs: spec.data.Opts.Procs, MaxExponentBits: spec.bits,
			})
		})
	}
	fp := ir.PlanFingerprint(spec.family, spec.sys.N, spec.sys.M, spec.sys.G, spec.sys.F, spec.sys.H, spec.bits)
	return server.PlanFor(co.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
		return ir.CompileCtx(ctx, spec.sys, ir.CompileOptions{
			Family: spec.family, Procs: spec.data.Opts.Procs, MaxExponentBits: spec.bits,
		})
	})
}

// Solve runs one distributed solve: plan, partition, scatter, gather,
// merge. Any scatter-level failure — including an empty fleet — degrades to
// a local in-process solve, so the coordinator answers whenever a single
// machine could. Results are bit-identical to ir.Plan.SolveCtx by the shard
// layer's contract.
func (co *Coordinator) Solve(ctx context.Context, spec *solveSpec) (*ir.PlanSolution, error) {
	p, err := co.planFor(ctx, spec)
	if err != nil {
		return nil, err
	}
	if spec.family == ir.FamilyGrid2D {
		return co.solveGrid2D(ctx, p, spec)
	}
	if spec.data.WithPowers {
		// Power traces are a whole-plan artifact; the shard path does not
		// carry them.
		return p.SolveCtx(ctx, spec.data)
	}
	parts, err := co.scatter(ctx, p, spec)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		co.metrics.fallbacks.Inc()
		if !errors.Is(err, ErrNoWorkers) {
			co.cfg.Logger.Printf("ircluster: scatter failed (%v); solving locally", err)
		}
		return p.SolveCtx(ctx, spec.data)
	}
	return p.MergeShards(spec.data, parts)
}

// scatter partitions the plan over the live fleet and executes every shard
// remotely, gathering the slices in shard order.
func (co *Coordinator) scatter(ctx context.Context, p *ir.Plan, spec *solveSpec) ([]*ir.ShardSolution, error) {
	ws := co.alive()
	if len(ws) == 0 {
		return nil, ErrNoWorkers
	}
	shards := p.Partition(len(ws))
	if len(shards) == 0 {
		// Empty shard domain (no writes): the merge of zero parts is the
		// init-copy answer, no network needed.
		return nil, nil
	}
	base, err := shardRequest(spec, ctx)
	if err != nil {
		return nil, err
	}

	// The retry budget is per solve, not per shard: all shards draw from
	// one pool, so a flapping fleet cannot multiply retries by shard count.
	var budget atomic.Int64
	budget.Store(co.retryBudget(len(shards)))

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([]*ir.ShardSolution, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh ir.Shard) {
			defer wg.Done()
			req := base
			req.Shard = server.ShardWire{Lo: sh.Lo, Hi: sh.Hi}
			prefs := rankWorkers(ws, p.Fingerprint(), i)
			resp, err := co.solveShard(sctx, req, prefs, &budget)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d [%d, %d): %w", i, sh.Lo, sh.Hi, err)
				cancel() // no point finishing the rest; we fall back locally
				return
			}
			parts[i] = &ir.ShardSolution{
				Shard:       ir.Shard{Lo: resp.Shard.Lo, Hi: resp.Shard.Hi},
				Cells:       resp.Cells,
				ValuesInt:   resp.ValuesInt,
				ValuesFloat: resp.ValuesFloat,
				Values:      resp.Values,
			}
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return parts, nil
}

// retryBudget resolves the per-solve retry budget for a scatter of the
// given shard count.
func (co *Coordinator) retryBudget(shards int) int64 {
	if co.cfg.RetryBudget < 0 {
		return 0
	}
	if co.cfg.RetryBudget > 0 {
		return int64(co.cfg.RetryBudget)
	}
	return int64(4 + 2*shards)
}

// solveShard executes one shard with bounded retries (jittered backoff
// stretched by Retry-After hints, next-ranked worker — the re-scatter
// path) and a single hedged duplicate for stragglers, cancelled as soon as
// a winner lands. prefs is the shard's rendezvous ranking of the fleet;
// workers whose circuit breaker is open are skipped. budget is the solve's
// shared retry pool; retries beyond MaxRetries per shard or an exhausted
// budget fail the shard (and the solve then falls back locally).
func (co *Coordinator) solveShard(ctx context.Context, req server.ShardRequest, prefs []*worker, budget *atomic.Int64) (*server.ShardResponse, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in any straggler the hedge raced against

	maxSends := 1 + co.cfg.MaxRetries
	type attempt struct {
		resp  *server.ShardResponse
		err   error
		w     *worker
		start time.Time
	}
	resCh := make(chan attempt, maxSends+1) // +1: the hedge; buffered so stragglers never block
	sends, idx := 0, 0
	// launch sends to the next breaker-admitted worker in preference order,
	// reporting false when every breaker refuses. The send goroutine itself
	// settles the breaker when the request finishes — not the receive loop —
	// so an attempt abandoned mid-flight (another worker won and sctx was
	// cancelled, or the solve ctx expired) still releases its half-open
	// probe slot instead of latching the breaker.
	launch := func(counter *server.Counter) bool {
		for tried := 0; tried < len(prefs); tried++ {
			w := prefs[idx%len(prefs)]
			idx++
			settle, ok := w.br.allow()
			if !ok {
				continue
			}
			sends++
			if counter != nil {
				counter.Inc()
			}
			go func() {
				start := time.Now()
				resp, err := w.client.SolveShard(sctx, req)
				switch {
				case err == nil:
					settle(outcomeSuccess)
				case breakerFailure(err):
					settle(outcomeFailure)
				default:
					settle(outcomeAbandoned)
				}
				resCh <- attempt{resp: resp, err: err, w: w, start: start}
			}()
			return true
		}
		return false
	}
	co.metrics.shards.Inc()
	if !launch(nil) {
		return nil, fmt.Errorf("ircluster: every worker's circuit breaker is open")
	}
	inflight := 1

	var hedgeC <-chan time.Time // nil channel: never fires
	if co.cfg.HedgeAfter > 0 && len(prefs) > 1 {
		t := time.NewTimer(co.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for inflight > 0 {
		select {
		case a := <-resCh:
			inflight--
			if a.err == nil {
				// Cancel the losing side (a straggler the hedge or a retry
				// raced against) before anything else, so its connection and
				// goroutine unwind while we record the win.
				cancel()
				co.metrics.shardLatency.Observe(time.Since(a.start).Seconds())
				return a.resp, nil
			}
			lastErr = a.err
			co.noteFailure(a.w, a.err)
			if !retryable(a.err) {
				return nil, a.err
			}
			if sends < maxSends && budget.Add(-1) >= 0 {
				if err := sleepCtx(ctx, co.retryDelay(sends, a.err)); err != nil {
					return nil, err
				}
				if launch(co.metrics.retries) {
					inflight++
				} else {
					// Nothing was sent (every breaker refused): refund the
					// budget unit so no-op retries cannot drain the solve's
					// pool under a fully-open fleet.
					budget.Add(1)
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if sends < maxSends && launch(co.metrics.hedges) {
				inflight++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// breakerFailure reports whether err should count against the worker's
// circuit breaker: transport failures and overload/5xx responses do,
// request errors (4xx) and caller-side cancellation do not.
func breakerFailure(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 || apiErr.IsShed()
	}
	return true
}

// retryDelay is the wait before retry number attempt (1-based): the
// jittered backoff, stretched to honor a shedding worker's Retry-After
// hint (clamped to MaxRetryAfter).
func (co *Coordinator) retryDelay(attempt int, err error) time.Duration {
	d := co.backoff(attempt)
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
		if d > co.cfg.MaxRetryAfter {
			d = co.cfg.MaxRetryAfter
		}
	}
	return d
}

// noteFailure marks a worker down on transport-level errors (a static
// worker's probe or a dynamic worker's next heartbeat brings it back);
// HTTP-level errors leave liveness alone.
func (co *Coordinator) noteFailure(w *worker, err error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	if w.setUp(false) {
		co.metrics.workerUp.Set(0, w.name)
		co.cfg.Logger.Printf("ircluster: worker %s down: %v", w.name, err)
		co.fleetChanged()
	}
}

// retryable reports whether another worker could plausibly answer: network
// failures and overload/5xx responses retry, request errors (4xx) do not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 || apiErr.IsShed()
	}
	return true
}

// backoff returns the jittered delay before retry number attempt (1-based):
// base·attempt plus up to 50% random jitter.
func (co *Coordinator) backoff(attempt int) time.Duration {
	d := co.cfg.RetryBackoff * time.Duration(attempt)
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// shardRequest builds the scatter's base request (everything but the Shard
// field) from a spec. Per-shard deadlines inherit the solve ctx's deadline,
// forwarded as timeout_ms so workers bound their own admission.
func shardRequest(spec *solveSpec, ctx context.Context) (server.ShardRequest, error) {
	req := server.ShardRequest{
		Family: spec.family.String(),
		Opts: ir.OptionsWire{
			Procs:           spec.data.Opts.Procs,
			MaxExponentBits: spec.bits,
		},
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl).Milliseconds()
		if remaining < 1 {
			remaining = 1
		}
		req.Opts.TimeoutMs = int(remaining)
	}
	if spec.family == ir.FamilyMoebius {
		req.System = ir.SystemWire{M: spec.m, N: len(spec.g), G: spec.g, F: spec.f}
		req.A, req.B, req.C, req.D = spec.data.A, spec.data.B, spec.data.C, spec.data.D
		req.X0 = spec.data.X0
		return req, nil
	}
	if spec.family == ir.FamilyGrid2D {
		// Bands attach their own Grid (with halo boundaries) per send.
		return req, nil
	}
	if spec.sparse != nil {
		req.System = ir.WireFromSparse(spec.sparse)
	} else {
		req.System = ir.WireFromSystem(spec.sys)
	}
	req.Op, req.Mod = spec.data.Op, spec.data.Mod
	var init any = spec.data.InitFloat
	if spec.data.InitInt != nil {
		init = spec.data.InitInt
	}
	raw, err := json.Marshal(init)
	if err != nil {
		return req, err
	}
	req.Init = raw
	return req, nil
}
