package cluster

import (
	"testing"
	"time"
)

// TestBreakerStateMachine drives the three-state machine on a fake clock:
// closed trips open after threshold consecutive failures, open refuses
// until the cooldown, half-open admits exactly one probe, and the probe's
// outcome decides between closed and another open period.
func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	var transitions []int
	b := newBreaker(3, time.Second, func(s int) { transitions = append(transitions, s) })
	b.now = func() time.Time { return clock }

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.onFailure()
	}
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("state after 2/3 failures = %s", breakerStateName(got))
	}

	// A success resets the streak: two more failures must not trip it.
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("streak survived a success: state = %s", breakerStateName(got))
	}

	// The third consecutive failure trips it open.
	b.onFailure()
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state after threshold failures = %s", breakerStateName(got))
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clock = clock.Add(time.Second + time.Millisecond)
	if !b.allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if got := b.snapshot(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %s", breakerStateName(got))
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure re-opens for another full cooldown.
	b.onFailure()
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state after failed probe = %s", breakerStateName(got))
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}

	// Second probe succeeds: closed again, and failures count from zero.
	clock = clock.Add(time.Second + time.Millisecond)
	if !b.allow() {
		t.Fatal("re-cooled breaker refused the probe")
	}
	b.onSuccess()
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("state after successful probe = %s", breakerStateName(got))
	}
	if !b.allow() {
		t.Fatal("closed breaker refused traffic")
	}

	want := []int{breakerOpen, breakerHalfOpen, breakerOpen, breakerHalfOpen, breakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i,
				breakerStateName(transitions[i]), breakerStateName(want[i]))
		}
	}
}

// TestBreakerDisabled asserts a zero threshold turns the breaker off
// entirely: it always admits and never changes state.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second, func(int) { t.Fatal("disabled breaker fired a transition") })
	for i := 0; i < 10; i++ {
		if !b.allow() {
			t.Fatal("disabled breaker refused a request")
		}
		b.onFailure()
	}
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("disabled breaker state = %s", breakerStateName(got))
	}
}
