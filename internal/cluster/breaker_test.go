package cluster

import (
	"testing"
	"time"
)

// admit is a test helper: allow() asserting admission, returning the settle
// callback.
func admit(t *testing.T, b *breaker, what string) func(int) {
	t.Helper()
	settle, ok := b.allow()
	if !ok {
		t.Fatalf("breaker refused %s", what)
	}
	return settle
}

// refused asserts allow() declines the request.
func refused(t *testing.T, b *breaker, what string) {
	t.Helper()
	if _, ok := b.allow(); ok {
		t.Fatalf("breaker admitted %s", what)
	}
}

// TestBreakerStateMachine drives the three-state machine on a fake clock:
// closed trips open after threshold consecutive failures, open refuses
// until the cooldown, half-open admits exactly one probe, and the probe's
// outcome decides between closed and another open period.
func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	var transitions []int
	b := newBreaker(3, time.Second, func(s int) { transitions = append(transitions, s) })
	b.now = func() time.Time { return clock }

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		admit(t, b, "a closed-state request")(outcomeFailure)
	}
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("state after 2/3 failures = %s", breakerStateName(got))
	}

	// A success resets the streak: two more failures must not trip it.
	admit(t, b, "a closed-state request")(outcomeSuccess)
	admit(t, b, "a closed-state request")(outcomeFailure)
	admit(t, b, "a closed-state request")(outcomeFailure)
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("streak survived a success: state = %s", breakerStateName(got))
	}

	// The third consecutive failure trips it open.
	admit(t, b, "a closed-state request")(outcomeFailure)
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state after threshold failures = %s", breakerStateName(got))
	}
	refused(t, b, "a request inside the cooldown")

	// Cooldown elapses: exactly one half-open probe is admitted.
	clock = clock.Add(time.Second + time.Millisecond)
	probe := admit(t, b, "the half-open probe")
	if got := b.snapshot(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %s", breakerStateName(got))
	}
	refused(t, b, "a second concurrent probe")

	// Probe failure re-opens for another full cooldown.
	probe(outcomeFailure)
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state after failed probe = %s", breakerStateName(got))
	}
	refused(t, b, "a request right after the re-open")

	// Second probe succeeds: closed again, and failures count from zero.
	clock = clock.Add(time.Second + time.Millisecond)
	admit(t, b, "the second probe")(outcomeSuccess)
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("state after successful probe = %s", breakerStateName(got))
	}
	admit(t, b, "closed-state traffic")

	want := []int{breakerOpen, breakerHalfOpen, breakerOpen, breakerHalfOpen, breakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i,
				breakerStateName(transitions[i]), breakerStateName(want[i]))
		}
	}
}

// TestBreakerAbandonedProbeReleasesSlot covers the latch regression: a
// half-open probe whose attempt ends without a worker-attributable outcome
// (caller-side cancellation) must release the probe slot, so the next
// request is admitted as a fresh probe instead of the breaker refusing
// traffic forever. Settling the same attempt twice must be a no-op.
func TestBreakerAbandonedProbeReleasesSlot(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(1, time.Second, nil)
	b.now = func() time.Time { return clock }

	admit(t, b, "the tripping request")(outcomeFailure) // threshold 1: open
	clock = clock.Add(time.Second + time.Millisecond)

	// The probe is abandoned (e.g. another worker won and the scatter ctx
	// was cancelled): the breaker stays half-open but must re-admit.
	probe := admit(t, b, "the first probe")
	probe(outcomeAbandoned)
	if got := b.snapshot(); got != breakerHalfOpen {
		t.Fatalf("state after abandoned probe = %s", breakerStateName(got))
	}
	second := admit(t, b, "the probe after an abandoned one")

	// The stale settle callback is spent; it must not release the live
	// probe's slot or mutate state.
	probe(outcomeFailure)
	if got := b.snapshot(); got != breakerHalfOpen {
		t.Fatalf("spent settle mutated state to %s", breakerStateName(got))
	}
	refused(t, b, "a concurrent probe while one is in flight")

	second(outcomeSuccess)
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("state after successful probe = %s", breakerStateName(got))
	}
}

// TestBreakerDisabled asserts a zero threshold turns the breaker off
// entirely: it always admits and never changes state.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second, func(int) { t.Fatal("disabled breaker fired a transition") })
	for i := 0; i < 10; i++ {
		admit(t, b, "a request on a disabled breaker")(outcomeFailure)
	}
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("disabled breaker state = %s", breakerStateName(got))
	}
}
