package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
)

// openChain starts a linear streaming session X[i+1] = X[i] + 1 from
// X[0] = 1 through the coordinator front; written cell i holds i + 1.
func openChain(t *testing.T, c *client.Client, m int) *server.SessionOpenResponse {
	t.Helper()
	open, err := c.OpenSession(context.Background(), server.SessionOpenRequest{
		Family: "linear",
		M:      m, G: []int{1, 2}, F: []int{0, 1},
		A: []float64{1, 1}, B: []float64{1, 1},
		X0: append([]float64{1}, make([]float64, m-1)...),
	})
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	return open
}

// appendStep folds iteration "at" (writing cell at from cell at-1) and
// asserts the streamed value matches the closed form.
func appendStep(t *testing.T, c *client.Client, id string, at int) {
	t.Helper()
	ar, err := c.Append(context.Background(), id, server.SessionAppendRequest{
		G: []int{at}, F: []int{at - 1}, A: []float64{1}, B: []float64{1},
	})
	if err != nil {
		t.Fatalf("Append at=%d: %v", at, err)
	}
	if len(ar.Values) != 1 || ar.Values[0] != float64(at+1) {
		t.Fatalf("Append at=%d values = %v, want [%d]", at, ar.Values, at+1)
	}
}

// pinnedWorker returns the coordinator-side entry and the testWorker the
// session is currently homed on.
func pinnedWorker(t *testing.T, co *Coordinator, workers []*testWorker, id string) (*streamEntry, *testWorker) {
	t.Helper()
	co.smu.Lock()
	e := co.sessions[id]
	co.smu.Unlock()
	if e == nil {
		t.Fatalf("coordinator has no entry for session %s", id)
	}
	for _, tw := range workers {
		if tw.ts.URL == e.w.name {
			return e, tw
		}
	}
	t.Fatalf("pinned worker %s not in fleet", e.w.name)
	return nil, nil
}

// TestClusterSessionRehomeOnWorkerDeath streams through the coordinator,
// crashes the pinned worker mid-stream, and checks the session is rebuilt
// on a survivor by replay with the fold staying bit-identical.
func TestClusterSessionRehomeOnWorkerDeath(t *testing.T) {
	leaked := checkGoroutines(t)
	co, workers, down := newFleet(t, 3, nil)
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	c := client.New(front.URL)

	open := openChain(t, c, 64)
	for at := 3; at <= 10; at++ {
		appendStep(t, c, open.ID, at)
	}

	e, tw := pinnedWorker(t, co, workers, open.ID)
	before := e.w.name
	dead := func(r *http.Request) bool { return false }
	tw.intercept.Store(&dead)

	// The next appends must survive the crash: the coordinator replays the
	// open plus the 8 logged appends onto a survivor, then applies each new
	// batch exactly once.
	for at := 11; at <= 20; at++ {
		appendStep(t, c, open.ID, at)
	}
	if got := co.metrics.sessionRehomes.Value(); got < 1 {
		t.Fatalf("sessionRehomes = %d, want >= 1", got)
	}
	if e.w.name == before {
		t.Fatalf("session still pinned to crashed worker %s", before)
	}

	st, err := c.GetSession(context.Background(), open.ID)
	if err != nil {
		t.Fatalf("GetSession: %v", err)
	}
	if st.N != 20 || st.ID != open.ID {
		t.Fatalf("state N=%d ID=%s, want 20/%s", st.N, st.ID, open.ID)
	}
	for i := 0; i <= 20; i++ {
		if st.Values[i] != float64(i+1) {
			t.Fatalf("Values[%d] = %v, want %d", i, st.Values[i], i+1)
		}
	}

	if err := c.CloseSession(context.Background(), open.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	var apiErr *client.APIError
	if _, err := c.GetSession(context.Background(), open.ID); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("GetSession after close: %v, want 404", err)
	}

	front.Close()
	down()
	leaked()
}

// TestClusterSessionRehomeOnWorkerEviction covers the healthy-worker-
// forgot-the-session path: the remote session vanishes (as after an idle
// TTL eviction or worker restart) while the worker stays up, and the next
// append replays the log — possibly onto the same worker — instead of
// failing.
func TestClusterSessionRehomeOnWorkerEviction(t *testing.T) {
	co, workers, down := newFleet(t, 2, nil)
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	c := client.New(front.URL)

	open := openChain(t, c, 32)
	for at := 3; at <= 6; at++ {
		appendStep(t, c, open.ID, at)
	}

	// Evict the remote session behind the coordinator's back.
	e, _ := pinnedWorker(t, co, workers, open.ID)
	if err := client.New(e.w.name).CloseSession(context.Background(), e.remoteID); err != nil {
		t.Fatalf("direct CloseSession: %v", err)
	}

	appendStep(t, c, open.ID, 7)
	if got := co.metrics.sessionRehomes.Value(); got != 1 {
		t.Fatalf("sessionRehomes = %d, want 1", got)
	}
	st, err := c.GetSession(context.Background(), open.ID)
	if err != nil {
		t.Fatalf("GetSession: %v", err)
	}
	if st.N != 7 || st.Values[7] != 8 {
		t.Fatalf("state after eviction re-home = N=%d Values[7]=%v", st.N, st.Values[7])
	}
	down()
}

// TestClusterSessionFailsCleanWithoutWorkers crashes the whole fleet and
// checks appends fail promptly with a gateway error instead of hanging or
// double-applying.
func TestClusterSessionFailsCleanWithoutWorkers(t *testing.T) {
	co, workers, down := newFleet(t, 2, nil)
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	c := client.New(front.URL)

	open := openChain(t, c, 16)
	dead := func(r *http.Request) bool { return false }
	for _, tw := range workers {
		tw.intercept.Store(&dead)
	}

	_, err := c.Append(context.Background(), open.ID, server.SessionAppendRequest{
		G: []int{3}, F: []int{2}, A: []float64{1}, B: []float64{1},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("append with dead fleet: %v, want APIError", err)
	}
	if apiErr.Status != http.StatusBadGateway && apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("append with dead fleet status = %d, want 502 or 503", apiErr.Status)
	}
	down()
}
