package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"indexedrec/internal/server"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

// postFront posts a JSON body to the coordinator front-end and returns the
// status plus raw response.
func postFront(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// sparseClusterReq builds a sparse ordinary request over a banded system
// scattered across a global array of m cells, far beyond the dense limit.
func sparseClusterReq(t *testing.T, m, n, bands int) (*ir.SparseSystem, server.OrdinaryRequest, []int64) {
	t.Helper()
	sp := workload.SparseBanded(m, n, bands)
	init := make([]int64, sp.NumCells())
	for i := range init {
		init[i] = int64(i%97) + 1
	}
	blob, err := json.Marshal(init)
	if err != nil {
		t.Fatal(err)
	}
	return sp, server.OrdinaryRequest{
		System: ir.WireFromSparse(sp),
		Op:     "int64-add",
		Init:   blob,
	}, init
}

// TestClusterSparseScatter drives a sparse solve through the coordinator
// front-end over a live fleet: the global array (50M cells) is over 10x the
// coordinator's dense limit, so only the compact encoding can carry it, and
// the scattered answer must match the local compact solve bit-for-bit.
func TestClusterSparseScatter(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, _, down := newFleet(t, 2, nil)
		front := httptest.NewServer(co.Handler())
		defer front.Close()

		sp, req, init := sparseClusterReq(t, 50_000_000, 2048, 8)
		want, err := ir.SolveSparseOrdinaryCtx[int64](context.Background(), sp, ir.IntAdd{}, init, ir.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}

		code, data := postFront(t, front.URL+server.APIPrefix+"ordinary", req)
		if code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", code, data)
		}
		var out server.OrdinaryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.ValuesInt) != sp.NumCells() || len(out.Cells) != sp.NumCells() {
			t.Fatalf("got %d values over %d cells, want %d", len(out.ValuesInt), len(out.Cells), sp.NumCells())
		}
		for i := range want.Values {
			if out.ValuesInt[i] != want.Values[i] || out.Cells[i] != sp.Cells[i] {
				t.Fatalf("compact id %d: value %d cell %d, want %d at %d",
					i, out.ValuesInt[i], out.Cells[i], want.Values[i], sp.Cells[i])
			}
		}
		if co.metrics.shards.Value() == 0 {
			t.Fatal("sparse solve never scattered")
		}
		if co.metrics.fallbacks.Value() != 0 {
			t.Fatalf("%d local fallbacks in a healthy fleet", co.metrics.fallbacks.Value())
		}
		down()
	}()
	leak()
}

// TestClusterSparseNoWorkersFallback asserts a coordinator with an empty
// fleet still answers sparse solves by degrading to a local compact solve.
func TestClusterSparseNoWorkersFallback(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, _, down := newFleet(t, 0, nil)
		front := httptest.NewServer(co.Handler())
		defer front.Close()

		sp, req, init := sparseClusterReq(t, 10_000_000, 512, 4)
		want, err := ir.SolveSparseOrdinaryCtx[int64](context.Background(), sp, ir.IntAdd{}, init, ir.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		code, data := postFront(t, front.URL+server.APIPrefix+"ordinary", req)
		if code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", code, data)
		}
		var out server.OrdinaryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if out.ValuesInt[i] != want.Values[i] {
				t.Fatalf("compact id %d: %d, want %d", i, out.ValuesInt[i], want.Values[i])
			}
		}
		if co.metrics.fallbacks.Value() == 0 {
			t.Fatal("empty fleet produced no local fallback")
		}
		down()
	}()
	leak()
}

// TestClusterSparseErrors posts malformed sparse encodings to the
// coordinator and asserts the same 422 typed-error contract as irserved.
func TestClusterSparseErrors(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, _, down := newFleet(t, 1, nil)
		front := httptest.NewServer(co.Handler())
		defer front.Close()
		_ = co

		_, good, _ := sparseClusterReq(t, 1_000_000, 64, 2)

		unsorted := good
		unsorted.System.Cells = append([]int(nil), good.System.Cells...)
		unsorted.System.Cells[0], unsorted.System.Cells[1] = unsorted.System.Cells[1], unsorted.System.Cells[0]

		outOfRange := good
		outOfRange.System.Cells = append([]int(nil), good.System.Cells...)
		outOfRange.System.Cells[len(outOfRange.System.Cells)-1] = good.System.M

		shortInit := good
		shortInit.Init = json.RawMessage(`[1, 2, 3]`)

		for name, req := range map[string]server.OrdinaryRequest{
			"unsorted cells": unsorted, "cell out of range": outOfRange, "init length mismatch": shortInit,
		} {
			code, data := postFront(t, front.URL+server.APIPrefix+"ordinary", req)
			if code != http.StatusUnprocessableEntity {
				t.Fatalf("%s: HTTP %d: %s, want 422", name, code, data)
			}
			var e server.ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Code != http.StatusUnprocessableEntity {
				t.Fatalf("%s: error body %s not the typed 422 schema", name, data)
			}
		}
		down()
	}()
	leak()
}

// TestClusterSparseKillSwitch flips the sparse fast path off at the
// coordinator: small systems fall back to a dense expansion bit-identically,
// and global sizes beyond the dense limit are refused instead of expanded.
func TestClusterSparseKillSwitch(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, _, down := newFleet(t, 1, nil)
		front := httptest.NewServer(co.Handler())
		defer front.Close()
		_ = co

		sp, req, init := sparseClusterReq(t, 100_000, 64, 2)
		want, err := ir.SolveSparseOrdinaryCtx[int64](context.Background(), sp, ir.IntAdd{}, init, ir.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ir.SetSparseEnabled(false)
		defer ir.SetSparseEnabled(true)

		code, data := postFront(t, front.URL+server.APIPrefix+"ordinary", req)
		if code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", code, data)
		}
		var out server.OrdinaryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.ValuesInt) != sp.NumCells() || len(out.Cells) != sp.NumCells() {
			t.Fatalf("fallback shape: %d values over %d cells, want compact %d", len(out.ValuesInt), len(out.Cells), sp.NumCells())
		}
		for i := range want.Values {
			if out.ValuesInt[i] != want.Values[i] {
				t.Fatalf("kill-switch fallback diverges at compact id %d", i)
			}
		}

		// A 50M-cell global array cannot be expanded under the 4M dense limit.
		_, big, _ := sparseClusterReq(t, 50_000_000, 64, 2)
		code, data = postFront(t, front.URL+server.APIPrefix+"ordinary", big)
		if code == http.StatusOK {
			t.Fatalf("global m=50M accepted with the sparse path disabled: %s", data)
		}
		down()
	}()
	leak()
}
