package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
	"indexedrec/ir"
)

// Elasticity and failure-tolerance tests: registration/lease lifecycle,
// membership churn under sustained load (the acceptance chaos proof),
// circuit-breaker isolation, Retry-After honoring, and prompt hedge-loser
// cancellation. Everything asserts the cluster's core contract on top:
// answers stay bit-identical to ir.Plan.SolveCtx and no goroutines leak.

// elasticFleet starts a coordinator with no static workers plus its HTTP
// front-end, so workers join by registration alone.
func elasticFleet(t *testing.T, mut func(*Config)) (*Coordinator, *httptest.Server, func()) {
	t.Helper()
	co, _, downFleet := newFleet(t, 0, mut)
	front := httptest.NewServer(co.Handler())
	var once sync.Once
	down := func() {
		once.Do(func() {
			front.Close()
			downFleet()
		})
	}
	t.Cleanup(down)
	return co, front, down
}

// startWorker brings up one in-process irserved worker (not yet a member)
// with an idempotent teardown for tests to call before their leak check.
func startWorker(t *testing.T) (*testWorker, func()) {
	t.Helper()
	tw := &testWorker{srv: server.New(server.Config{})}
	tw.ts = httptest.NewServer(tw)
	var once sync.Once
	down := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = tw.srv.Shutdown(ctx)
			cancel()
			tw.ts.Close()
			client.SharedTransport().CloseIdleConnections()
		})
	}
	t.Cleanup(down)
	return tw, down
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chainSpec is a deterministic many-chain ordinary solve used as load.
func chainSpec(m int) *solveSpec {
	g := make([]int, m/2)
	f := make([]int, m/2)
	init := make([]int64, m)
	for i := range g {
		g[i], f[i] = 2*i+1, 2*i
	}
	for i := range init {
		init[i] = int64(i)
	}
	sys := &ir.System{M: m, N: len(g), G: g, F: f}
	return specFor(ir.FamilyOrdinary, sys, 0, nil, nil,
		ir.PlanData{Op: "int64-add", InitInt: init})
}

// singleChainSpec is the smallest one-shard solve: one chain through all
// of a tiny domain, so a test controls exactly one shard request.
func singleChainSpec() *solveSpec {
	return specFor(ir.FamilyOrdinary, &ir.System{M: 8, N: 7,
		G: []int{1, 2, 3, 4, 5, 6, 7}, F: []int{0, 1, 2, 3, 4, 5, 6}}, 0, nil, nil,
		ir.PlanData{Op: "int64-add", InitInt: []int64{1, 1, 1, 1, 1, 1, 1, 1}})
}

// generalSpec is a deterministic general-family solve over mul-mod.
func generalSpec(m int) *solveSpec {
	n := 2 * m
	g := make([]int, n)
	f := make([]int, n)
	h := make([]int, n)
	for i := 0; i < n; i++ {
		g[i], f[i], h[i] = (3*i+1)%m, (5*i+2)%m, (7*i)%m
	}
	init := make([]int64, m)
	for x := range init {
		init[x] = int64(x%97) + 2
	}
	spec := specFor(ir.FamilyGeneral, &ir.System{M: m, N: n, G: g, F: f, H: h}, 0, nil, nil,
		ir.PlanData{Op: "mul-mod", Mod: 1_000_003, InitInt: init})
	spec.bits = 4096
	return spec
}

// diffSolution is assertSameSolution without the t.Fatal, for use from
// load goroutines.
func diffSolution(got, want *ir.PlanSolution) error {
	if len(got.ValuesInt) != len(want.ValuesInt) ||
		len(got.ValuesFloat) != len(want.ValuesFloat) ||
		len(got.Values) != len(want.Values) {
		return fmt.Errorf("value shape mismatch: got (%d,%d,%d), want (%d,%d,%d)",
			len(got.ValuesInt), len(got.ValuesFloat), len(got.Values),
			len(want.ValuesInt), len(want.ValuesFloat), len(want.Values))
	}
	for i := range want.ValuesInt {
		if got.ValuesInt[i] != want.ValuesInt[i] {
			return fmt.Errorf("cell %d: distributed %v != local %v", i, got.ValuesInt[i], want.ValuesInt[i])
		}
	}
	for i := range want.ValuesFloat {
		if got.ValuesFloat[i] != want.ValuesFloat[i] {
			return fmt.Errorf("cell %d: distributed %v != local %v", i, got.ValuesFloat[i], want.ValuesFloat[i])
		}
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			return fmt.Errorf("cell %d: distributed %v != local %v", i, got.Values[i], want.Values[i])
		}
	}
	return nil
}

// runRegistrar starts a worker-side registrar against the front-end and
// returns its idempotent stop function (cancel + wait for deregistration).
func runRegistrar(t *testing.T, frontURL string, tw *testWorker) (stop func()) {
	t.Helper()
	reg := client.NewRegistrar(client.RegistrarConfig{
		Coordinator: frontURL,
		Advertise:   tw.ts.URL,
		Logger:      log.New(io.Discard, "", 0),
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); reg.Run(ctx) }()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return stop
}

// TestRegistrarLifecycle runs the real worker-side Registrar against a real
// coordinator front-end: registration makes the worker a live dynamic
// member that serves shards, and cancelling the registrar deregisters it
// immediately (no lease wait).
func TestRegistrarLifecycle(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, front, down := elasticFleet(t, func(cfg *Config) {
			cfg.LeaseTTL = time.Second
		})
		tw, downWorker := startWorker(t)

		reg := client.NewRegistrar(client.RegistrarConfig{
			Coordinator: front.URL,
			Advertise:   tw.ts.URL,
			Version:     "test-build",
			Logger:      log.New(io.Discard, "", 0),
		})
		rctx, rcancel := context.WithCancel(context.Background())
		regDone := make(chan struct{})
		go func() { defer close(regDone); reg.Run(rctx) }()
		defer rcancel()

		waitFor(t, 5*time.Second, "worker registration", func() bool {
			w := co.member(tw.ts.URL)
			return w != nil && w.isUp()
		})
		w := co.member(tw.ts.URL)
		w.mu.Lock()
		dynamic, version := w.dynamic, w.version
		w.mu.Unlock()
		if !dynamic {
			t.Fatal("registered worker not marked dynamic")
		}
		if version != "test-build" {
			t.Fatalf("worker version = %q, want the registered build", version)
		}
		if got := co.metrics.members.Value(); got != 1 {
			t.Fatalf("ircluster_members = %v, want 1", got)
		}

		// The registered member serves real shards.
		spec := chainSpec(64)
		want := localSolution(t, spec)
		got, err := co.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("solve on a registered fleet: %v", err)
		}
		assertSameSolution(t, got, want)
		if co.metrics.shards.Value() == 0 {
			t.Fatal("solve never scattered to the registered worker")
		}

		// The fleet view reports the dynamic member with its breaker closed.
		resp, err := http.Get(front.URL + server.ClusterPrefix + "workers")
		if err != nil {
			t.Fatal(err)
		}
		var ws []WorkerStatus
		err = json.NewDecoder(resp.Body).Decode(&ws)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != 1 || !ws[0].Dynamic || !ws[0].Up || ws[0].Breaker != "closed" {
			t.Fatalf("fleet view: %+v", ws)
		}

		// Graceful stop: the registrar deregisters; the member disappears
		// long before its 1s lease would lapse.
		rcancel()
		<-regDone
		waitFor(t, time.Second/2, "deregistration", func() bool {
			return co.member(tw.ts.URL) == nil
		})
		if got := co.metrics.workerUp.Value(tw.ts.URL); got != 0 {
			t.Fatalf("deregistered worker still up in metrics: %d", got)
		}
		downWorker()
		down()
	}()
	leak()
}

// TestClusterTokenGatesMembership starts a coordinator requiring a shared
// registration token: membership writes without it (or with a wrong one)
// answer 401 and leave the fleet untouched, while a tokened Registrar joins
// and drains normally. The read-only fleet view stays open.
func TestClusterTokenGatesMembership(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		const token = "fleet-secret"
		co, front, down := elasticFleet(t, func(cfg *Config) {
			cfg.ClusterToken = token
		})
		tw, downWorker := startWorker(t)

		// No token and a wrong token are both refused on every membership
		// endpoint, and nothing joins the fleet.
		for _, tok := range []string{"", "wrong-secret"} {
			c := client.New(front.URL)
			c.ClusterToken = tok
			var apiErr *client.APIError
			if _, err := c.Register(context.Background(), server.RegisterRequest{Addr: tw.ts.URL}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
				t.Fatalf("register with token %q: %v, want 401", tok, err)
			}
			if _, err := c.Heartbeat(context.Background(), tw.ts.URL); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
				t.Fatalf("heartbeat with token %q: %v, want 401", tok, err)
			}
			if err := c.Deregister(context.Background(), tw.ts.URL); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
				t.Fatalf("deregister with token %q: %v, want 401", tok, err)
			}
		}
		if got := len(co.memberList()); got != 0 {
			t.Fatalf("unauthorized requests changed membership: %d members", got)
		}

		// A registrar carrying the token enrolls and serves.
		reg := client.NewRegistrar(client.RegistrarConfig{
			Coordinator: front.URL,
			Advertise:   tw.ts.URL,
			Token:       token,
			Logger:      log.New(io.Discard, "", 0),
		})
		rctx, rcancel := context.WithCancel(context.Background())
		regDone := make(chan struct{})
		go func() { defer close(regDone); reg.Run(rctx) }()
		waitFor(t, 5*time.Second, "tokened registration", func() bool {
			w := co.member(tw.ts.URL)
			return w != nil && w.isUp()
		})

		// An attacker with no token cannot evict the legitimate member.
		if err := client.New(front.URL).Deregister(context.Background(), tw.ts.URL); err == nil {
			t.Fatal("tokenless deregister of a live member succeeded")
		}
		if w := co.member(tw.ts.URL); w == nil || !w.isUp() {
			t.Fatal("tokenless deregister removed the member")
		}

		// The fleet view needs no token.
		resp, err := http.Get(front.URL + server.ClusterPrefix + "workers")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet view with no token: HTTP %d", resp.StatusCode)
		}

		// The tokened drain deregisters cleanly.
		rcancel()
		<-regDone
		waitFor(t, time.Second, "tokened deregistration", func() bool {
			return co.member(tw.ts.URL) == nil
		})
		downWorker()
		down()
	}()
	leak()
}

// TestLeaseExpiryRemovesWorker registers a worker that never heartbeats:
// the missed-lease detector must remove it within a couple of TTLs, and
// later heartbeats for the forgotten name must 404 so the worker knows to
// re-register.
func TestLeaseExpiryRemovesWorker(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, front, down := elasticFleet(t, func(cfg *Config) {
			cfg.LeaseTTL = 150 * time.Millisecond
		})
		tw, downWorker := startWorker(t)
		c := client.New(front.URL)
		if _, err := c.Register(context.Background(), server.RegisterRequest{Addr: tw.ts.URL}); err != nil {
			t.Fatalf("register: %v", err)
		}
		if co.member(tw.ts.URL) == nil {
			t.Fatal("worker absent right after registration")
		}
		waitFor(t, 2*time.Second, "lease expiry", func() bool {
			return co.member(tw.ts.URL) == nil
		})
		if got := co.metrics.workerUp.Value(tw.ts.URL); got != 0 {
			t.Fatalf("expired worker still up in metrics: %d", got)
		}
		if co.metrics.rebalances.Value() < 2 {
			t.Fatalf("rebalances = %d across register+expiry, want >= 2", co.metrics.rebalances.Value())
		}
		_, err := c.Heartbeat(context.Background(), tw.ts.URL)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
			t.Fatalf("heartbeat after expiry: %v, want 404", err)
		}
		downWorker()
		down()
	}()
	leak()
}

// TestElasticChurnUnderLoad is the acceptance chaos proof: three workers
// join by registration, sustained load runs, one worker is SIGKILLed
// (connections abort, heartbeats stop) and another drains gracefully
// (registrar deregisters) — every solve must keep succeeding bit-identical
// to the local answer, the dead worker must leave the fleet within a few
// lease intervals, and nothing may leak. The killed worker then
// re-registers and serves again.
func TestElasticChurnUnderLoad(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		const lease = 200 * time.Millisecond
		co, front, down := elasticFleet(t, func(cfg *Config) {
			cfg.LeaseTTL = lease
		})
		wKill, downKill := startWorker(t)   // dies without warning
		wDrain, downDrain := startWorker(t) // SIGTERM-style graceful drain
		wStay, downStay := startWorker(t)   // healthy throughout

		c := client.New(front.URL)

		// wKill heartbeats manually so the test can stop its heart exactly
		// when it "crashes" (a registrar would deregister on cancel, which a
		// SIGKILL never allows).
		if _, err := c.Register(context.Background(), server.RegisterRequest{Addr: wKill.ts.URL}); err != nil {
			t.Fatalf("register kill-worker: %v", err)
		}
		heartStop := make(chan struct{})
		heartDone := make(chan struct{})
		go func() {
			defer close(heartDone)
			tick := time.NewTicker(lease / 4)
			defer tick.Stop()
			for {
				select {
				case <-heartStop:
					return
				case <-tick.C:
					_, _ = c.Heartbeat(context.Background(), wKill.ts.URL)
				}
			}
		}()

		stopDrain := runRegistrar(t, front.URL, wDrain)
		stopStay := runRegistrar(t, front.URL, wStay)

		waitFor(t, 5*time.Second, "three live members", func() bool {
			return len(co.alive()) == 3
		})

		// Deterministic load set with precomputed local reference answers.
		specs := []*solveSpec{
			chainSpec(64), chainSpec(96), chainSpec(128), generalSpec(24),
		}
		wants := make([]*ir.PlanSolution, len(specs))
		for i, sp := range specs {
			wants[i] = localSolution(t, sp)
		}

		// Sustained load: every completed solve is checked bit-identical.
		// The goroutines never touch t directly; failures funnel through
		// loadErr.
		loadStop := make(chan struct{})
		var loadWG sync.WaitGroup
		var solves atomic.Int64
		loadErr := make(chan error, 64)
		report := func(err error) {
			select {
			case loadErr <- err:
			default:
			}
		}
		for g := 0; g < 4; g++ {
			loadWG.Add(1)
			go func(g int) {
				defer loadWG.Done()
				for i := g; ; i++ {
					select {
					case <-loadStop:
						return
					default:
					}
					k := i % len(specs)
					got, err := co.Solve(context.Background(), specs[k])
					if err != nil {
						report(fmt.Errorf("solve during churn: %w", err))
						return
					}
					if err := diffSolution(got, wants[k]); err != nil {
						report(fmt.Errorf("churned solve diverged from local: %w", err))
						return
					}
					solves.Add(1)
				}
			}(g)
		}
		waitFor(t, 10*time.Second, "load to ramp", func() bool { return solves.Load() >= 8 })

		// CHAOS 1 — SIGKILL wKill: abort every connection, stop the heart.
		dead := func(r *http.Request) bool { return false }
		wKill.intercept.Store(&dead)
		close(heartStop)
		<-heartDone
		killedAt := time.Now()

		// The failure detector must evict it within one lease plus a
		// detector tick (plus scheduling slack under load).
		waitFor(t, 4*lease, "missed-lease eviction", func() bool {
			return co.member(wKill.ts.URL) == nil
		})
		t.Logf("kill -> eviction in %v (lease %v)", time.Since(killedAt), lease)

		// CHAOS 2 — graceful drain of wDrain mid-load.
		preDrain := solves.Load()
		stopDrain()
		if co.member(wDrain.ts.URL) != nil {
			t.Fatal("drained worker still in the fleet after deregistration")
		}

		// Load keeps flowing on the survivor.
		waitFor(t, 10*time.Second, "solves on the survivor", func() bool {
			return solves.Load() >= preDrain+8
		})
		if got := len(co.alive()); got != 1 {
			t.Fatalf("alive = %d after kill+drain, want 1", got)
		}
		if got := co.metrics.members.Value(); got != 1 {
			t.Fatalf("ircluster_members = %v after kill+drain, want 1", got)
		}

		// RECOVERY — the killed worker comes back and re-registers.
		wKill.intercept.Store(nil)
		stopRejoin := runRegistrar(t, front.URL, wKill)
		waitFor(t, 5*time.Second, "re-registration", func() bool {
			return len(co.alive()) == 2
		})
		preJoin := solves.Load()
		waitFor(t, 10*time.Second, "solves on the rejoined fleet", func() bool {
			return solves.Load() >= preJoin+8
		})

		close(loadStop)
		loadWG.Wait()
		select {
		case err := <-loadErr:
			t.Fatalf("churn broke a solve: %v", err)
		default:
		}
		if co.metrics.rebalances.Value() < 4 {
			t.Fatalf("rebalances = %d across join/kill/drain/rejoin, want >= 4",
				co.metrics.rebalances.Value())
		}

		// The coordinator's metrics page stays valid exposition throughout,
		// with the elasticity metrics present.
		page, err := client.New(front.URL).Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := server.ValidateExposition(page); err != nil {
			t.Fatalf("coordinator /metrics: %v", err)
		}
		for _, name := range []string{
			"ircluster_members", "ircluster_rebalances_total",
			"ircluster_breaker_state", "ircluster_breaker_opens_total",
			"ircluster_worker_up",
		} {
			if !strings.Contains(page, name) {
				t.Errorf("coordinator /metrics missing %s", name)
			}
		}

		stopRejoin()
		stopStay()
		downKill()
		downDrain()
		downStay()
		down()
	}()
	leak()
}

// TestBreakerIsolatesFailingWorker turns one of two workers into a 500
// machine (up, but failing): after BreakerThreshold consecutive failures
// its breaker opens and traffic stops reaching it, while solves keep
// succeeding on the healthy worker; once the worker heals, the half-open
// probe closes the breaker again.
func TestBreakerIsolatesFailingWorker(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, workers, down := newFleet(t, 2, func(cfg *Config) {
			cfg.BreakerThreshold = 2
			cfg.BreakerCooldown = time.Second
		})
		var shardHits atomic.Int64
		fail := func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path != server.ShardPrefix+"solve" {
				return false
			}
			shardHits.Add(1)
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"injected failure","code":500}`))
			return true
		}
		workers[0].respond.Store(&fail)

		// Shard placement is rendezvous-hashed per plan fingerprint, so cycle
		// system shapes to guarantee some shards rank the failing worker
		// first regardless of the random test ports.
		specs := make([]*solveSpec, 8)
		wants := make([]*ir.PlanSolution, len(specs))
		for i := range specs {
			specs[i] = chainSpec(64 + 4*i)
			wants[i] = localSolution(t, specs[i])
		}
		next := 0
		solveOK := func() {
			t.Helper()
			k := next % len(specs)
			next++
			got, err := co.Solve(context.Background(), specs[k])
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			assertSameSolution(t, got, wants[k])
		}

		// Drive solves until the failing worker's breaker opens. Every
		// answer stays correct: failures retry onto the healthy worker.
		name := workers[0].ts.URL
		waitFor(t, 10*time.Second, "breaker to open", func() bool {
			solveOK()
			return co.member(name).br.snapshot() == breakerOpen
		})
		if co.metrics.breakerOpens.Value() == 0 {
			t.Fatal("breaker opened without incrementing ircluster_breaker_opens_total")
		}
		if got := co.metrics.breakerState.Value(name); got != breakerOpen {
			t.Fatalf("ircluster_breaker_state = %d, want %d (open)", got, breakerOpen)
		}
		// A 500 is the worker's fault, not a liveness signal: it must stay
		// in the fleet (the breaker, not the prober, isolates it).
		if !co.member(name).isUp() {
			t.Fatal("500-ing worker marked down; breakers should isolate it instead")
		}

		// While the breaker is open (inside the cooldown) the worker
		// receives no traffic.
		quiet := shardHits.Load()
		solveOK()
		solveOK()
		if got := shardHits.Load(); got != quiet {
			t.Fatalf("open breaker leaked %d requests to the failing worker", got-quiet)
		}

		// Heal the worker: the next half-open probe succeeds, the breaker
		// closes, and traffic returns.
		workers[0].respond.Store(nil)
		waitFor(t, 10*time.Second, "breaker to close", func() bool {
			solveOK()
			return co.member(name).br.snapshot() == breakerClosed
		})
		if got := co.metrics.breakerState.Value(name); got != breakerClosed {
			t.Fatalf("ircluster_breaker_state = %d after recovery, want closed", got)
		}
		down()
	}()
	leak()
}

// TestAbandonedProbeDoesNotBlackholeWorker reproduces the breaker-latch
// regression at the scatter level: a half-open probe whose request dies
// with the solve context (caller-side cancellation, no worker-attributable
// outcome) must release the probe slot. Before the fix the abandoned probe
// left probing latched forever, blackholing the worker from every future
// solve.
func TestAbandonedProbeDoesNotBlackholeWorker(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, workers, down := newFleet(t, 1, func(cfg *Config) {
			cfg.BreakerThreshold = 1
			cfg.BreakerCooldown = 50 * time.Millisecond
			cfg.ProbeInterval = 20 * time.Millisecond // liveness self-heals
		})
		name := workers[0].ts.URL
		br := co.member(name).br

		// Trip the breaker: one 500 opens it (threshold 1); the solve falls
		// back locally and still answers.
		fail := func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path != server.ShardPrefix+"solve" {
				return false
			}
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"injected failure","code":500}`))
			return true
		}
		workers[0].respond.Store(&fail)
		spec := singleChainSpec()
		want := localSolution(t, spec)
		got, err := co.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("solve during trip: %v", err)
		}
		assertSameSolution(t, got, want)
		if br.snapshot() != breakerOpen {
			t.Fatalf("breaker = %s after a threshold-1 failure, want open", breakerStateName(br.snapshot()))
		}
		workers[0].respond.Store(nil)

		// After the cooldown, hang the half-open probe until its request
		// context dies and run a solve under a short deadline: the probe is
		// admitted, then abandoned by the cancellation.
		time.Sleep(60 * time.Millisecond)
		hang := func(r *http.Request) bool {
			if r.URL.Path != server.ShardPrefix+"solve" {
				return true
			}
			_, _ = io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			return false // abort the connection, as a dead request would
		}
		workers[0].intercept.Store(&hang)
		sctx, scancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		_, err = co.Solve(sctx, spec)
		scancel()
		if err == nil {
			t.Fatal("hung-probe solve succeeded; the probe was never in flight")
		}
		workers[0].intercept.Store(nil)

		// The abandoned probe must not latch the breaker: once the hung
		// attempt settles, a fresh probe is re-admitted and real traffic
		// closes the breaker again.
		waitFor(t, 5*time.Second, "the probe slot to be released", func() bool {
			settle, ok := br.allow()
			if ok {
				settle(outcomeAbandoned)
			}
			return ok
		})
		waitFor(t, 10*time.Second, "the breaker to close on live traffic", func() bool {
			got, err := co.Solve(context.Background(), spec)
			if err != nil {
				t.Fatalf("post-recovery solve: %v", err)
			}
			assertSameSolution(t, got, want)
			return br.snapshot() == breakerClosed
		})
		down()
	}()
	leak()
}

// TestRetryAfterHonored sheds the first shard request with 429 and a 1s
// Retry-After hint under a 250ms MaxRetryAfter clamp: the retry must wait
// at least the clamped hint (far above the millisecond base backoff) but
// not the full advertised second.
func TestRetryAfterHonored(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, workers, down := newFleet(t, 1, func(cfg *Config) {
			cfg.MaxRetryAfter = 250 * time.Millisecond
		})
		var shed atomic.Bool
		shedOnce := func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path != server.ShardPrefix+"solve" || !shed.CompareAndSwap(false, true) {
				return false
			}
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"busy","code":429}`))
			return true
		}
		workers[0].respond.Store(&shedOnce)

		// Single chain → single shard → the one shed and its retry dominate
		// the wall clock.
		spec := singleChainSpec()
		want := localSolution(t, spec)
		start := time.Now()
		got, err := co.Solve(context.Background(), spec)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("solve across a shed: %v", err)
		}
		assertSameSolution(t, got, want)
		if !shed.Load() {
			t.Fatal("the 429 never fired")
		}
		if co.metrics.retries.Value() == 0 {
			t.Fatal("shed shard was not retried")
		}
		if elapsed < 240*time.Millisecond {
			t.Fatalf("solve finished in %v; the Retry-After hint was not honored", elapsed)
		}
		if elapsed > 900*time.Millisecond {
			t.Fatalf("solve took %v; the 1s hint was not clamped to MaxRetryAfter", elapsed)
		}
		down()
	}()
	leak()
}

// TestHedgeLoserCancelledPromptly holds the first shard request hostage
// until its request context dies: the hedge must win on the other worker
// and the coordinator must cancel the loser as soon as the winner lands —
// not when the solve or some outer deadline would have expired.
func TestHedgeLoserCancelledPromptly(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		co, workers, down := newFleet(t, 2, func(cfg *Config) {
			cfg.HedgeAfter = 20 * time.Millisecond
		})
		var first atomic.Bool
		released := make(chan time.Time, 1)
		block := func(r *http.Request) bool {
			if r.URL.Path == server.ShardPrefix+"solve" && first.CompareAndSwap(false, true) {
				// Drain the body so the server's background read can detect
				// the client abort and cancel r.Context().
				_, _ = io.Copy(io.Discard, r.Body)
				select {
				case <-r.Context().Done():
					released <- time.Now()
				case <-time.After(10 * time.Second):
				}
				return false // abort; the winner already answered
			}
			return true
		}
		for _, tw := range workers {
			tw.intercept.Store(&block)
		}

		spec := singleChainSpec()
		want := localSolution(t, spec)
		got, err := co.Solve(context.Background(), spec)
		won := time.Now()
		if err != nil {
			t.Fatalf("hedged solve: %v", err)
		}
		assertSameSolution(t, got, want)
		if co.metrics.hedges.Value() == 0 {
			t.Fatal("no hedge fired for the blocked shard")
		}
		select {
		case at := <-released:
			if lag := at.Sub(won); lag > 500*time.Millisecond {
				t.Fatalf("loser cancelled %v after the winner landed; want prompt", lag)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("losing request never saw cancellation after the hedge won")
		}
		down()
	}()
	leak()
}
