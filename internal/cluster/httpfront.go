package cluster

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"indexedrec/internal/moebius"
	"indexedrec/internal/server"
	"indexedrec/ir"
)

// The coordinator's HTTP front-end speaks the same /v1/solve API as a
// single irserved, so clients point at a coordinator without changing a
// line: ordinary, general, linear and moebius solves scatter across the
// fleet, /v1/solve/loop answers 501 (loop execution is whole-machine by
// construction), and /healthz, /readyz, /metrics, /version behave as on
// irserved. /v1/cluster/workers reports the fleet view.

func (co *Coordinator) routes() {
	co.mux = http.NewServeMux()
	co.allowed = make(map[string][]string)
	co.handle("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	co.handle("GET", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		// The coordinator is ready even with zero workers: solves degrade
		// to local execution rather than failing.
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	co.handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = co.reg.WriteTo(w)
	})
	co.handle("GET", "/version", func(w http.ResponseWriter, r *http.Request) {
		co.writeJSON(w, "version", http.StatusOK, server.BuildVersion())
	})
	co.handle("GET", server.ClusterPrefix+"workers", co.handleWorkers)
	co.handle("POST", server.ClusterPrefix+"register", co.handleRegister)
	co.handle("POST", server.ClusterPrefix+"heartbeat", co.handleHeartbeat)
	co.handle("POST", server.ClusterPrefix+"deregister", co.handleDeregister)
	co.sessionRoutes()
	co.handle("POST", server.APIPrefix+"ordinary", func(w http.ResponseWriter, r *http.Request) {
		co.handleSolve(w, r, "ordinary", co.specOrdinary)
	})
	co.handle("POST", server.APIPrefix+"general", func(w http.ResponseWriter, r *http.Request) {
		co.handleSolve(w, r, "general", co.specGeneral)
	})
	co.handle("POST", server.APIPrefix+"linear", func(w http.ResponseWriter, r *http.Request) {
		co.handleSolve(w, r, "linear", co.specLinear)
	})
	co.handle("POST", server.APIPrefix+"moebius", func(w http.ResponseWriter, r *http.Request) {
		co.handleSolve(w, r, "moebius", co.specMoebius)
	})
	co.handle("POST", server.APIPrefix+"grid2d", func(w http.ResponseWriter, r *http.Request) {
		co.handleSolve(w, r, "grid2d", co.specGrid2D)
	})
	co.handle("POST", server.APIPrefix+"loop", func(w http.ResponseWriter, r *http.Request) {
		co.writeError(w, "loop", http.StatusNotImplemented,
			"loop execution is not distributed; POST /v1/solve/loop to a worker directly")
	})
	co.fallbackRoutes()
}

// handle registers h for "METHOD path" and records the method under the
// path so fallbackRoutes can answer mismatches with the JSON wire error
// schema instead of the mux's plain-text pages.
func (co *Coordinator) handle(method, path string, h http.HandlerFunc) {
	co.mux.HandleFunc(method+" "+path, h)
	co.allowed[path] = append(co.allowed[path], method)
}

// fallbackRoutes closes the plain-text gaps a bare ServeMux leaves: a known
// path hit with the wrong method gets a 405 with an Allow header, and any
// unknown path gets a 404 — both as server.ErrorResponse JSON, the same
// schema every implemented endpoint (and irserved) speaks, so clients never
// need a second error decoder for the coordinator's edges.
func (co *Coordinator) fallbackRoutes() {
	for path, methods := range co.allowed {
		allow := strings.Join(methods, ", ")
		co.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			co.writeError(w, "unmatched", http.StatusMethodNotAllowed,
				fmt.Sprintf("method %s not allowed for %s (allow: %s)", r.Method, r.URL.Path, allow))
		})
	}
	co.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		co.writeError(w, "unmatched", http.StatusNotFound,
			fmt.Sprintf("no such endpoint %s (solve endpoints live under %s)", r.URL.Path, server.APIPrefix))
	})
}

// Handler returns the coordinator's HTTP handler.
func (co *Coordinator) Handler() http.Handler { return co.mux }

// ListenAndServe serves the coordinator API on addr until ctx is cancelled.
func (co *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: co.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := hs.Shutdown(shCtx)
	co.Close()
	return err
}

// WorkerStatus is one row of GET /v1/cluster/workers.
type WorkerStatus struct {
	// Name is the worker's configured or registered address.
	Name string `json:"name"`
	// Up reports liveness: the last probe for static workers, an unexpired
	// lease for registered ones.
	Up bool `json:"up"`
	// Version is the build the worker reported at registration.
	Version string `json:"version,omitempty"`
	// Dynamic marks a self-registered, lease-governed member.
	Dynamic bool `json:"dynamic,omitempty"`
	// LeaseMs is the time left on a dynamic member's lease.
	LeaseMs int64 `json:"lease_ms,omitempty"`
	// Breaker is the circuit-breaker state: closed, half-open or open.
	Breaker string `json:"breaker"`
}

func (co *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	members := co.memberList()
	out := make([]WorkerStatus, 0, len(members))
	for _, wk := range members {
		wk.mu.Lock()
		st := WorkerStatus{
			Name:    wk.name,
			Up:      wk.up,
			Version: wk.version,
			Dynamic: wk.dynamic,
			Breaker: breakerStateName(wk.br.snapshot()),
		}
		if wk.dynamic {
			if left := time.Until(wk.lease); left > 0 {
				st.LeaseMs = left.Milliseconds()
			}
		}
		wk.mu.Unlock()
		out = append(out, st)
	}
	co.writeJSON(w, "workers", http.StatusOK, out)
}

// authorizeMember gates the membership endpoints behind the shared cluster
// token when one is configured, answering 401 (and reporting false) on a
// missing or wrong token. Without a token the endpoints are open — the
// deployment must then keep the cluster API on a trusted network, since
// membership writes control where shard payloads are routed.
func (co *Coordinator) authorizeMember(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	if co.cfg.ClusterToken == "" {
		return true
	}
	got := r.Header.Get(server.ClusterTokenHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(co.cfg.ClusterToken)) == 1 {
		return true
	}
	co.writeError(w, endpoint, http.StatusUnauthorized,
		"missing or invalid "+server.ClusterTokenHeader+" cluster token")
	return false
}

// handleRegister admits a self-registering worker into the fleet and
// grants it a heartbeat lease.
func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !co.authorizeMember(w, r, "register") {
		return
	}
	var req server.RegisterRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		co.writeError(w, "register", http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Addr == "" {
		co.writeError(w, "register", http.StatusBadRequest, "missing \"addr\"")
		return
	}
	lease := co.register(req.Addr, req.Version)
	co.writeJSON(w, "register", http.StatusOK, server.RegisterResponse{LeaseMs: lease.Milliseconds()})
}

// handleHeartbeat renews a registered worker's lease; unknown members get
// 404 and should re-register.
func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !co.authorizeMember(w, r, "heartbeat") {
		return
	}
	var req server.MemberRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		co.writeError(w, "heartbeat", http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if !co.renew(req.Addr) {
		co.writeError(w, "heartbeat", http.StatusNotFound,
			fmt.Sprintf("unknown member %q, re-register", req.Addr))
		return
	}
	co.writeJSON(w, "heartbeat", http.StatusOK, server.RegisterResponse{LeaseMs: co.cfg.LeaseTTL.Milliseconds()})
}

// handleDeregister removes a draining worker from the fleet.
func (co *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if !co.authorizeMember(w, r, "deregister") {
		return
	}
	var req server.MemberRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		co.writeError(w, "deregister", http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	co.deregister(req.Addr)
	co.writeJSON(w, "deregister", http.StatusOK, map[string]string{"status": "ok"})
}

// specFunc decodes a request body into a solve spec plus a function that
// shapes the finished PlanSolution into the endpoint's response type.
type specFunc func(body []byte) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error)

// handleSolve is the shared endpoint path: decode, distribute, respond.
func (co *Coordinator) handleSolve(w http.ResponseWriter, r *http.Request, endpoint string, decode specFunc) {
	start := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		co.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	spec, shape, err := decode(body)
	if err != nil {
		co.writeError(w, endpoint, statusForSpec(err), err.Error())
		return
	}
	ctx, cancel := co.requestContext(r, spec.timeoutMs)
	defer cancel()
	sol, err := co.Solve(ctx, spec)
	co.metrics.solveLatency.With(endpoint).Observe(time.Since(start).Seconds())
	if err != nil {
		co.writeError(w, endpoint, statusFor(err), err.Error())
		return
	}
	co.writeJSON(w, endpoint, http.StatusOK, shape(sol, time.Since(start)))
}

// requestContext bounds a solve by the client's timeout_ms (clamped to two
// minutes, as irserved) or a 30s default.
func (co *Coordinator) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := 30 * time.Second
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
		if d > 2*time.Minute {
			d = 2 * time.Minute
		}
	}
	return context.WithTimeout(r.Context(), d)
}

func (co *Coordinator) specOrdinary(body []byte) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	var req server.OrdinaryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %v", err)
	}
	if req.System.IsSparse() {
		return co.specSparseOrdinary(&req)
	}
	sys, data, err := co.systemAndData(req.System, req.Op, req.Mod, req.Init, req.Opts)
	if err != nil {
		return nil, nil, err
	}
	if !sys.Ordinary() {
		return nil, nil, fmt.Errorf("/v1/solve/ordinary requires H = G (use /v1/solve/general)")
	}
	spec := &solveSpec{family: ir.FamilyOrdinary, sys: sys, data: data, timeoutMs: req.Opts.TimeoutMs}
	return spec, func(sol *ir.PlanSolution, elapsed time.Duration) any {
		return server.OrdinaryResponse{
			ValuesInt:   sol.ValuesInt,
			ValuesFloat: sol.ValuesFloat,
			Rounds:      sol.Rounds,
			Combines:    sol.Combines,
			ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		}
	}, nil
}

func (co *Coordinator) specGeneral(body []byte) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	var req server.GeneralRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %v", err)
	}
	if req.System.IsSparse() {
		return co.specSparseGeneral(&req)
	}
	sys, data, err := co.systemAndData(req.System, req.Op, req.Mod, req.Init, req.Opts)
	if err != nil {
		return nil, nil, err
	}
	bits := co.cfg.MaxExponentBits
	if b := req.Opts.MaxExponentBits; b > 0 && b < bits {
		bits = b
	}
	data.WithPowers = req.WithPowers
	spec := &solveSpec{family: ir.FamilyGeneral, sys: sys, bits: bits, data: data, timeoutMs: req.Opts.TimeoutMs}
	return spec, func(sol *ir.PlanSolution, elapsed time.Duration) any {
		return server.GeneralResponse{
			ValuesInt:   sol.ValuesInt,
			ValuesFloat: sol.ValuesFloat,
			Powers:      sol.Powers,
			CAPRounds:   sol.CAPRounds,
			ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		}
	}, nil
}

// specSparseOrdinary is specOrdinary's sparse-encoding branch: values and
// init are in compact order, and the response echoes the touched-cell list.
func (co *Coordinator) specSparseOrdinary(req *server.OrdinaryRequest) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	sp, data, err := co.sparseAndData(req.System, req.Op, req.Mod, req.Init, req.Opts)
	if err != nil {
		return nil, nil, err
	}
	if !sp.Compact.Ordinary() {
		return nil, nil, fmt.Errorf("%w: /v1/solve/ordinary requires H = G (use /v1/solve/general)", ir.ErrInvalidSparse)
	}
	spec, gather, err := co.sparseSpec(sp, ir.FamilyOrdinary, 0, data, req.Opts.TimeoutMs)
	if err != nil {
		return nil, nil, err
	}
	return spec, func(sol *ir.PlanSolution, elapsed time.Duration) any {
		gather(sol)
		return server.OrdinaryResponse{
			ValuesInt:   sol.ValuesInt,
			ValuesFloat: sol.ValuesFloat,
			Cells:       sp.Cells,
			Rounds:      sol.Rounds,
			Combines:    sol.Combines,
			ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		}
	}, nil
}

// specSparseGeneral is specGeneral's sparse-encoding branch. Power traces
// come back in compact order but name global cells, matching irserved.
func (co *Coordinator) specSparseGeneral(req *server.GeneralRequest) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	sp, data, err := co.sparseAndData(req.System, req.Op, req.Mod, req.Init, req.Opts)
	if err != nil {
		return nil, nil, err
	}
	bits := co.cfg.MaxExponentBits
	if b := req.Opts.MaxExponentBits; b > 0 && b < bits {
		bits = b
	}
	data.WithPowers = req.WithPowers
	spec, gather, err := co.sparseSpec(sp, ir.FamilyGeneral, bits, data, req.Opts.TimeoutMs)
	if err != nil {
		return nil, nil, err
	}
	return spec, func(sol *ir.PlanSolution, elapsed time.Duration) any {
		gather(sol)
		return server.GeneralResponse{
			ValuesInt:   sol.ValuesInt,
			ValuesFloat: sol.ValuesFloat,
			Cells:       sp.Cells,
			Powers:      sol.Powers,
			CAPRounds:   sol.CAPRounds,
			ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		}
	}, nil
}

// sparseSpec builds the solve spec for a sparse system. With the fast path
// enabled the compact system is the plan source and scatters as-is. Under
// the kill switch (ir.SetSparseEnabled(false)) the coordinator expands to
// the dense form locally — refused when the global size exceeds the dense
// limit, since materialising it is exactly what the sparse form avoids —
// and the returned gather maps the dense solution back to compact order,
// bit-identically. The switch is read once here, so the spec's plan, shard
// payloads, and response shaping always agree.
func (co *Coordinator) sparseSpec(sp *ir.SparseSystem, fam ir.Family, bits int, data ir.PlanData, timeoutMs int) (*solveSpec, func(*ir.PlanSolution), error) {
	if ir.SparseEnabled() {
		spec := &solveSpec{family: fam, sys: sp.Compact, sparse: sp, bits: bits, data: data, timeoutMs: timeoutMs}
		return spec, func(sol *ir.PlanSolution) {
			// Compact-plan power traces name compact sinks; report global ids.
			for _, terms := range sol.Powers {
				for k := range terms {
					terms[k].Cell = sp.Cells[terms[k].Cell]
				}
			}
		}, nil
	}
	if sp.M > co.cfg.MaxN {
		return nil, nil, fmt.Errorf("global m = %d exceeds the coordinator limit %d while the sparse fast path is disabled",
			sp.M, co.cfg.MaxN)
	}
	dense := data
	if data.InitInt != nil {
		full := make([]int64, sp.M)
		for i, c := range sp.Cells {
			full[c] = data.InitInt[i]
		}
		dense.InitInt = full
	}
	if data.InitFloat != nil {
		full := make([]float64, sp.M)
		for i, c := range sp.Cells {
			full[c] = data.InitFloat[i]
		}
		dense.InitFloat = full
	}
	spec := &solveSpec{family: fam, sys: sp.Dense(), bits: bits, data: dense, timeoutMs: timeoutMs}
	return spec, func(sol *ir.PlanSolution) {
		if sol.ValuesInt != nil {
			compact := make([]int64, len(sp.Cells))
			for i, c := range sp.Cells {
				compact[i] = sol.ValuesInt[c]
			}
			sol.ValuesInt = compact
		}
		if sol.ValuesFloat != nil {
			compact := make([]float64, len(sp.Cells))
			for i, c := range sp.Cells {
				compact[i] = sol.ValuesFloat[c]
			}
			sol.ValuesFloat = compact
		}
		if sol.Powers != nil {
			compact := make([][]ir.PowerTerm, len(sp.Cells))
			for i, c := range sp.Cells {
				compact[i] = sol.Powers[c]
			}
			sol.Powers = compact
		}
	}, nil
}

// sparseAndData is systemAndData's sparse twin: it bounds the compact
// encoding by the coordinator limit (the global size is deliberately
// unbounded on the fast path — work scales with the touched count), decodes
// the wire form, and sizes init against the touched-cell count.
func (co *Coordinator) sparseAndData(w ir.SystemWire, op string, mod int64, init json.RawMessage, opts ir.OptionsWire) (*ir.SparseSystem, ir.PlanData, error) {
	var data ir.PlanData
	if w.N > co.cfg.MaxN || len(w.G) > co.cfg.MaxN || len(w.Cells) > co.cfg.MaxN {
		return nil, data, fmt.Errorf("n = %d exceeds the coordinator limit %d",
			max(w.N, max(len(w.G), len(w.Cells))), co.cfg.MaxN)
	}
	sp, err := w.Sparse()
	if err != nil {
		return nil, data, err
	}
	opt, err := opts.Options()
	if err != nil {
		return nil, data, err
	}
	data = ir.PlanData{Op: op, Mod: mod, Opts: opt}
	iop, err := ir.IntOpByName(op, mod)
	if err != nil {
		return nil, data, err
	}
	if iop != nil {
		if data.InitInt, err = server.DecodeInitInt(init); err != nil {
			return nil, data, err
		}
		if len(data.InitInt) != sp.NumCells() {
			return nil, data, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d",
				ir.ErrInvalidSparse, len(data.InitInt), sp.NumCells())
		}
		return sp, data, nil
	}
	fop, err := ir.FloatOpByName(op)
	if err != nil {
		return nil, data, err
	}
	if fop == nil {
		return nil, data, fmt.Errorf("unknown op %q (one of %s)", op, strings.Join(ir.OpNames(), ", "))
	}
	if data.InitFloat, err = server.DecodeInitFloat(init); err != nil {
		return nil, data, err
	}
	if len(data.InitFloat) != sp.NumCells() {
		return nil, data, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d",
			ir.ErrInvalidSparse, len(data.InitFloat), sp.NumCells())
	}
	return sp, data, nil
}

func (co *Coordinator) specGrid2D(body []byte) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	var req server.Grid2DRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %v", err)
	}
	sys := &req.System
	if cells := int64(sys.Rows) * int64(sys.Cols); sys.Rows > 0 && sys.Cols > 0 && cells > int64(co.cfg.MaxN) {
		return nil, nil, fmt.Errorf("grid %dx%d = %d cells exceeds the coordinator limit %d",
			sys.Rows, sys.Cols, cells, co.cfg.MaxN)
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	opt, err := req.Opts.Options()
	if err != nil {
		return nil, nil, err
	}
	spec := &solveSpec{
		family:    ir.FamilyGrid2D,
		grid:      sys,
		data:      ir.PlanData{Grid: sys, Opts: opt},
		timeoutMs: req.Opts.TimeoutMs,
	}
	cells := int64(sys.Rows) * int64(sys.Cols)
	return spec, func(sol *ir.PlanSolution, elapsed time.Duration) any {
		return server.Grid2DResponse{
			Values:    sol.Values,
			Rounds:    sol.Rounds,
			Cells:     cells,
			ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		}
	}, nil
}

func (co *Coordinator) specLinear(body []byte) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	var req server.LinearRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %v", err)
	}
	var ms *moebius.MoebiusSystem
	if req.Extended {
		if len(req.X0) != req.M {
			return nil, nil, fmt.Errorf("extended form: len(x0) = %d, want m = %d", len(req.X0), req.M)
		}
		ms = moebius.NewExtended(req.M, req.G, req.F, req.A, req.B, req.X0)
	} else {
		ms = moebius.NewLinear(req.M, req.G, req.F, req.A, req.B)
	}
	return co.specFromMoebius(ms, req.X0, req.Opts)
}

func (co *Coordinator) specMoebius(body []byte) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	var req server.MoebiusRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %v", err)
	}
	ms := &moebius.MoebiusSystem{M: req.M, G: req.G, F: req.F, A: req.A, B: req.B, C: req.C, D: req.D}
	return co.specFromMoebius(ms, req.X0, req.Opts)
}

func (co *Coordinator) specFromMoebius(ms *moebius.MoebiusSystem, x0 []float64, opts ir.OptionsWire) (*solveSpec, func(*ir.PlanSolution, time.Duration) any, error) {
	if len(ms.G) > co.cfg.MaxN {
		return nil, nil, fmt.Errorf("n = %d exceeds the coordinator limit %d", len(ms.G), co.cfg.MaxN)
	}
	if err := ms.Validate(); err != nil {
		return nil, nil, err
	}
	if err := ms.CheckFinite(); err != nil {
		return nil, nil, err
	}
	if len(x0) != ms.M {
		return nil, nil, fmt.Errorf("len(x0) = %d, want m = %d", len(x0), ms.M)
	}
	for i, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("x0[%d] = %v is not finite", i, v)
		}
	}
	opt, err := opts.Options()
	if err != nil {
		return nil, nil, err
	}
	spec := &solveSpec{
		family: ir.FamilyMoebius,
		m:      ms.M, g: ms.G, f: ms.F,
		data:      ir.PlanData{A: ms.A, B: ms.B, C: ms.C, D: ms.D, X0: x0, Opts: opt},
		timeoutMs: opts.TimeoutMs,
	}
	return spec, func(sol *ir.PlanSolution, elapsed time.Duration) any {
		return server.MoebiusResponse{
			Values:    sol.Values,
			BatchSize: 1,
			ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		}
	}, nil
}

// systemAndData validates an ordinary/general request's system and decodes
// its init array into PlanData by the operator's domain.
func (co *Coordinator) systemAndData(w ir.SystemWire, op string, mod int64, init json.RawMessage, opts ir.OptionsWire) (*ir.System, ir.PlanData, error) {
	var data ir.PlanData
	if w.N > co.cfg.MaxN || len(w.G) > co.cfg.MaxN {
		return nil, data, fmt.Errorf("n = %d exceeds the coordinator limit %d", max(w.N, len(w.G)), co.cfg.MaxN)
	}
	sys, err := w.System()
	if err != nil {
		return nil, data, err
	}
	opt, err := opts.Options()
	if err != nil {
		return nil, data, err
	}
	data = ir.PlanData{Op: op, Mod: mod, Opts: opt}
	iop, err := ir.IntOpByName(op, mod)
	if err != nil {
		return nil, data, err
	}
	if iop != nil {
		if data.InitInt, err = server.DecodeInitInt(init); err != nil {
			return nil, data, err
		}
		if len(data.InitInt) != sys.M {
			return nil, data, fmt.Errorf("len(init) = %d, want m = %d", len(data.InitInt), sys.M)
		}
		return sys, data, nil
	}
	fop, err := ir.FloatOpByName(op)
	if err != nil {
		return nil, data, err
	}
	if fop == nil {
		return nil, data, fmt.Errorf("unknown op %q (one of %s)", op, strings.Join(ir.OpNames(), ", "))
	}
	if data.InitFloat, err = server.DecodeInitFloat(init); err != nil {
		return nil, data, err
	}
	if len(data.InitFloat) != sys.M {
		return nil, data, fmt.Errorf("len(init) = %d, want m = %d", len(data.InitFloat), sys.M)
	}
	return sys, data, nil
}

// statusForSpec maps request-decode errors: sparse-encoding defects are
// semantic errors in a well-formed request (422, as on irserved); anything
// else at decode time is a bad request.
func statusForSpec(err error) int {
	if errors.Is(err, ir.ErrInvalidSparse) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// statusFor maps solve errors to HTTP statuses (the coordinator-side twin
// of irserved's mapping).
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, ir.ErrInvalidSystem), errors.Is(err, moebius.ErrBadSystem), errors.Is(err, ir.ErrShard):
		return http.StatusBadRequest
	case errors.Is(err, ir.ErrNonFinite), errors.Is(err, ir.ErrGrid2DNonFinite),
		errors.Is(err, ir.ErrExponentLimit), errors.Is(err, ir.ErrInvalidSparse):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (co *Coordinator) writeJSON(w http.ResponseWriter, endpoint string, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
	co.metrics.requests.Inc(endpoint, strconv.Itoa(code))
}

func (co *Coordinator) writeError(w http.ResponseWriter, endpoint string, code int, msg string) {
	co.writeJSON(w, endpoint, code, server.ErrorResponse{Error: msg, Code: code})
}
