package cluster

import (
	"sync"
	"time"
)

// Per-worker circuit breaker. Every worker carries one; the scatter path
// asks allow() before sending a shard and settles the admitted attempt's
// outcome through the callback allow returns. The state machine is the
// classic three-state breaker:
//
//	closed    — requests flow; consecutive failures are counted.
//	open      — threshold consecutive failures tripped it; requests are
//	            skipped (the next rendezvous rank takes the shard) until
//	            the cooldown elapses.
//	half-open — after the cooldown ONE probe request is admitted; success
//	            closes the breaker, failure re-opens it for another
//	            cooldown, and an abandoned probe (caller-side cancellation,
//	            no evidence either way) releases the probe slot so the next
//	            request probes again.
//
// The breaker complements — not replaces — liveness: leases and probes
// decide who is in the fleet, the breaker decides whether a member that is
// nominally up should receive traffic right now. Only failures that
// indicate worker trouble (transport errors, 5xx, shed) count; request
// errors (4xx) and caller-side cancellation do not.

// Breaker states, exported through the ircluster_breaker_state gauge and
// the fleet view.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// Outcomes of one admitted attempt, passed to the settle callback allow
// returns.
const (
	// outcomeSuccess closes the breaker and resets the failure streak.
	outcomeSuccess = iota
	// outcomeFailure counts against the worker: it trips a closed breaker
	// at the threshold and re-opens a half-open one.
	outcomeFailure
	// outcomeAbandoned records an attempt that ended without evidence about
	// the worker (caller-side cancellation, solve already won elsewhere): no
	// state change, but a held half-open probe slot is released so the
	// breaker can never latch with a probe that will never report.
	outcomeAbandoned
)

// breakerStateName renders a breaker state for the fleet view.
func breakerStateName(s int) string {
	switch s {
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// breaker is one worker's circuit breaker. A zero threshold disables it
// (allow always admits, outcomes are ignored).
type breaker struct {
	threshold int           // consecutive failures to trip open
	cooldown  time.Duration // open → half-open delay
	onState   func(state int)

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	now      func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration, onState func(int)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, onState: onState, now: time.Now}
}

var noopSettle = func(int) {}

// allow reports whether a request may be sent through this breaker right
// now. In the open state it transitions to half-open once the cooldown has
// elapsed and admits exactly one probe. An admitted attempt MUST settle by
// calling the returned callback with its outcome when it finishes — for
// any reason, including cancellation — so a half-open probe slot is always
// released; extra calls are ignored.
func (b *breaker) allow() (settle func(outcome int), ok bool) {
	if b.threshold <= 0 {
		return noopSettle, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	probe := false
	switch b.state {
	case breakerClosed:
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return nil, false
		}
		b.setLocked(breakerHalfOpen)
		b.probing = true
		probe = true
	default: // half-open: only the single in-flight probe
		if b.probing {
			return nil, false
		}
		b.probing = true
		probe = true
	}
	var once sync.Once
	return func(outcome int) {
		once.Do(func() { b.settle(probe, outcome) })
	}, true
}

// settle records one admitted attempt's outcome. probe marks the attempt
// that holds the half-open probe slot; settling it — however it ended —
// releases the slot.
func (b *breaker) settle(probe bool, outcome int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch outcome {
	case outcomeSuccess:
		b.fails = 0
		if b.state != breakerClosed {
			b.setLocked(breakerClosed)
		}
	case outcomeFailure:
		switch b.state {
		case breakerClosed:
			b.fails++
			if b.fails >= b.threshold {
				b.trip()
			}
		case breakerHalfOpen:
			b.trip()
		case breakerOpen:
			// Late result from before the trip; the clock keeps running.
		}
	case outcomeAbandoned:
		// No evidence about the worker; only the probe slot (released
		// above) mattered.
	}
}

// trip opens the breaker and restarts the cooldown clock. Caller holds mu.
func (b *breaker) trip() {
	b.fails = 0
	b.openedAt = b.now()
	b.setLocked(breakerOpen)
}

// setLocked transitions the state and fires the hook. Caller holds mu.
func (b *breaker) setLocked(state int) {
	b.state = state
	if b.onState != nil {
		b.onState(state)
	}
}

// snapshot returns the current state without transitions (for the fleet
// view; a cooled-down open breaker still reads open until traffic probes
// it).
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
