package experiments

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"indexedrec/internal/report"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

func init() {
	register("sparse", "E22 — compressed sparse systems: solve cost, memory, and wire size scale with touched cells, not the global array",
		"benchmarks the sparse encoding against dense expansion as the untouched fraction grows", runSparse)
}

// SparseBaselineEnv names the environment variable pointing at a checked-in
// BENCH_sparse.json; when set, runSparse fails if any ratio's cold sparse
// solve regressed more than baselineSlack versus that baseline (the CI perf
// gate for the sparse hot path).
const SparseBaselineEnv = "IRBENCH_SPARSE_BASELINE"

// sparseProcs is the simulated processor count, fixed like scanProcs so the
// artifact is comparable across machines.
const sparseProcs = 8

// sparseGateFloorMs exempts ratios whose baseline cold sparse solve is under
// this many milliseconds from the regression gate (sub-millisecond runs
// jitter too much to gate; the larger ratios are where a regression in the
// compact path would show anyway).
const sparseGateFloorMs = 1.0

// densePayloadCap bounds the global sizes for which the dense request body
// is actually marshalled for the payload comparison: a 10M-cell init array
// is ~100 MB of JSON, which would dominate the benchmark's own footprint.
// Beyond the cap the dense payload column reports "-" (machine line -1).
const densePayloadCap = 2_000_000

// runSparse is E22: the sparse-encoding ablation. At fixed touched count n
// and growing global size m (m/n = 10, 100, 1000) it solves the same banded
// recurrence three ways — dense expansion (init, solve, and memory all O(m)),
// cold compact sparse (compile + solve, O(n)), and a warm sparse-plan replay —
// and measures wall clock, bytes allocated per cold solve, compiled plan
// sizes, and the JSON payload a /v1/solve request would carry in each
// encoding. Values must be bit-identical between the dense and compact
// routes (the compact relabeling is order-preserving; DESIGN §16). SPARSE
// machine lines accompany the table so CI and the IRBENCH_SPARSE_BASELINE
// gate can parse results. The headline: every dense column grows with m
// while every sparse column stays flat at n.
func runSparse(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	coldReps, warmReps := 3, 8
	n := 10_000
	ratios := []int{10, 100, 1000}
	if opt.Quick {
		coldReps, warmReps = 2, 3
		n = 2_000
		ratios = []int{10, 100}
	}
	if opt.N > 0 {
		n = opt.N
	}
	const bands = 8

	base, err := loadSparseBaseline(os.Getenv(SparseBaselineEnv))
	if err != nil {
		return err
	}

	ctx := context.Background()
	sopt := ir.SolveOptions{Procs: sparseProcs}

	tb := report.NewTable(
		fmt.Sprintf("sparse vs dense on banded systems (touched n=%d, %d bands, procs=%d, cold x%d, warm x%d, best-of)",
			n, bands, sparseProcs, coldReps, warmReps),
		"m/n", "global m", "dense cold ms", "sparse cold ms", "speedup", "warm sparse ms",
		"dense alloc MB", "sparse alloc MB", "mem ratio", "dense wire KB", "sparse wire KB", "identical")

	var machine []string
	for _, ratio := range ratios {
		m := ratio * n
		sp := workload.SparseBanded(m, n, bands)
		init := workload.InitInt64(rng, sp.NumCells(), 1<<20)

		// Dense route: expand init over the full array, solve the dense
		// system. The expansion is part of the measured cost — it is exactly
		// the O(m) work the sparse encoding deletes.
		dense := sp.Dense()
		var denseVals []int64
		denseBytes, denseMs, err := allocMeasured(coldReps, func() error {
			full := make([]int64, sp.M)
			for i, c := range sp.Cells {
				full[c] = init[i]
			}
			res, err := ir.SolveOrdinaryCtx[int64](ctx, dense, ir.IntAdd{}, full, sopt)
			if err != nil {
				return err
			}
			denseVals = res.Values
			return nil
		})
		if err != nil {
			return fmt.Errorf("sparse m/n=%d: dense solve: %w", ratio, err)
		}

		// Sparse route, cold: compile the compact plan and solve, both O(n).
		var sparseVals []int64
		var plan *ir.Plan
		sparseBytes, sparseMs, err := allocMeasured(coldReps, func() error {
			p, err := ir.CompileSparseCtx(ctx, sp, ir.CompileOptions{Family: ir.FamilyOrdinary, Procs: sparseProcs})
			if err != nil {
				return err
			}
			plan = p
			res, err := ir.SolveOrdinaryPlanCtx[int64](ctx, p, ir.IntAdd{}, init, sopt)
			if err != nil {
				return err
			}
			sparseVals = res.Values
			return nil
		})
		if err != nil {
			return fmt.Errorf("sparse m/n=%d: cold sparse solve: %w", ratio, err)
		}

		// Bit-identity across the encodings: compact value i is global cell
		// Cells[i] of the dense solution.
		identical := true
		for i, c := range sp.Cells {
			if sparseVals[i] != denseVals[c] {
				identical = false
				break
			}
		}
		if !identical {
			return fmt.Errorf("sparse m/n=%d: compact solve diverged from the dense expansion", ratio)
		}

		warmMs, err := bestOf(warmReps, func() error {
			_, err := ir.SolveOrdinaryPlanCtx[int64](ctx, plan, ir.IntAdd{}, init, sopt)
			return err
		})
		if err != nil {
			return fmt.Errorf("sparse m/n=%d: warm sparse replay: %w", ratio, err)
		}

		if prior, ok := base[ratio]; ok && prior >= sparseGateFloorMs && sparseMs > prior*baselineSlack {
			// One re-measurement with more reps before failing: a scheduler
			// hiccup during the first best-of window must not fail CI, a
			// real code regression will reproduce here.
			_, retryMs, rerr := allocMeasured(2*coldReps, func() error {
				p, err := ir.CompileSparseCtx(ctx, sp, ir.CompileOptions{Family: ir.FamilyOrdinary, Procs: sparseProcs})
				if err != nil {
					return err
				}
				_, err = ir.SolveOrdinaryPlanCtx[int64](ctx, p, ir.IntAdd{}, init, sopt)
				return err
			})
			if rerr != nil {
				return fmt.Errorf("sparse m/n=%d: cold sparse solve: %w", ratio, rerr)
			}
			if retryMs < sparseMs {
				sparseMs = retryMs
			}
			if sparseMs > prior*baselineSlack {
				return fmt.Errorf("sparse m/n=%d: cold sparse solve %.3f ms regressed >%.0f%% vs baseline %.3f ms",
					ratio, sparseMs, (baselineSlack-1)*100, prior)
			}
		}

		// Wire payloads: what a /v1/solve/ordinary request body weighs in
		// each encoding. The sparse body is O(n) however large m grows.
		sparsePayload := payloadBytes(ir.WireFromSparse(sp), init)
		densePayload := int64(-1)
		if m <= densePayloadCap {
			full := make([]int64, sp.M)
			for i, c := range sp.Cells {
				full[c] = init[i]
			}
			densePayload = payloadBytes(ir.WireFromSystem(dense), full)
		}

		denseWireCell := "-"
		if densePayload >= 0 {
			denseWireCell = fmt.Sprintf("%.1f", float64(densePayload)/1024)
		}
		tb.AddRow(ratio, m,
			fmt.Sprintf("%.3f", denseMs),
			fmt.Sprintf("%.3f", sparseMs),
			fmt.Sprintf("%.2fx", denseMs/sparseMs),
			fmt.Sprintf("%.3f", warmMs),
			fmt.Sprintf("%.1f", float64(denseBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(sparseBytes)/(1<<20)),
			fmt.Sprintf("%.1fx", float64(denseBytes)/float64(sparseBytes)),
			denseWireCell,
			fmt.Sprintf("%.1f", float64(sparsePayload)/1024),
			identical)
		machine = append(machine, fmt.Sprintf(
			"SPARSE mn=%d m=%d n=%d dense_cold_ms=%.3f sparse_cold_ms=%.3f warm_sparse_ms=%.3f dense_alloc_bytes=%d sparse_alloc_bytes=%d dense_payload=%d sparse_payload=%d identical=%v",
			ratio, m, n, denseMs, sparseMs, warmMs, denseBytes, sparseBytes, densePayload, sparsePayload, identical))
	}
	tb.Render(w)
	fmt.Fprintln(w)

	// Plan-size comparison at the largest ratio: the compiled artifact is the
	// resident cost a plan cache pays per cached shape.
	{
		ratio := ratios[len(ratios)-1]
		sp := workload.SparseBanded(ratio*n, n, bands)
		pSparse, err := ir.CompileSparseCtx(ctx, sp, ir.CompileOptions{Family: ir.FamilyOrdinary})
		if err != nil {
			return err
		}
		pDense, err := ir.CompileCtx(ctx, sp.Dense(), ir.CompileOptions{Family: ir.FamilyOrdinary})
		if err != nil {
			return err
		}
		pt := report.NewTable(fmt.Sprintf("compiled plan size (m/n=%d, m=%d)", ratio, ratio*n),
			"plan", "size MB", "schedule")
		pt.AddRow("dense", fmt.Sprintf("%.2f", float64(pDense.SizeBytes())/(1<<20)), pDense.Schedule())
		pt.AddRow("sparse", fmt.Sprintf("%.2f", float64(pSparse.SizeBytes())/(1<<20)), pSparse.Schedule())
		pt.Render(w)
		fmt.Fprintln(w)
		machine = append(machine, fmt.Sprintf("SPARSEPLAN mn=%d dense_plan_bytes=%d sparse_plan_bytes=%d",
			ratio, pDense.SizeBytes(), pSparse.SizeBytes()))
	}

	for _, line := range machine {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w, "\nDense cost, memory, and payload all grow linearly with the global array")
	fmt.Fprintln(w, "while the sparse columns stay flat at the touched count, so the gap is")
	fmt.Fprintln(w, "the m/n ratio itself. Values are bit-identical across the encodings.")
	return nil
}

// allocMeasured runs fn reps times, returning the bytes allocated during the
// first run (after a settling GC) and the best wall-clock milliseconds.
func allocMeasured(reps int, fn func() error) (int64, float64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ms, err := bestOf(1, fn)
	if err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&after)
	bytes := int64(after.TotalAlloc - before.TotalAlloc)
	for k := 1; k < reps; k++ {
		more, err := bestOf(1, fn)
		if err != nil {
			return 0, 0, err
		}
		if more < ms {
			ms = more
		}
	}
	return bytes, ms, nil
}

// payloadBytes sizes the JSON body of an ordinary solve request carrying the
// given wire system and init array.
func payloadBytes(sys ir.SystemWire, init []int64) int64 {
	body, err := json.Marshal(map[string]any{"system": sys, "op": "int64-add", "init": init})
	if err != nil {
		return -1
	}
	return int64(len(body))
}

// loadSparseBaseline parses a BENCH_sparse.json artifact (irbench -json
// lines) into m/n ratio -> cold sparse ms, reading the SPARSE machine lines
// embedded in each record's output. An empty path means no baseline.
func loadSparseBaseline(path string) (map[int]float64, error) {
	out := map[int]float64{}
	if path == "" {
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sparse baseline: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		for _, line := range strings.Split(sc.Text(), `\n`) {
			idx := strings.Index(line, "SPARSE ")
			if idx < 0 {
				continue
			}
			var ratio, m, n int
			var denseMs, sparseMs, warmMs float64
			var denseBytes, sparseBytes, densePayload, sparsePayload int64
			var identical bool
			if _, err := fmt.Sscanf(line[idx:],
				"SPARSE mn=%d m=%d n=%d dense_cold_ms=%f sparse_cold_ms=%f warm_sparse_ms=%f dense_alloc_bytes=%d sparse_alloc_bytes=%d dense_payload=%d sparse_payload=%d identical=%t",
				&ratio, &m, &n, &denseMs, &sparseMs, &warmMs, &denseBytes, &sparseBytes, &densePayload, &sparsePayload, &identical); err != nil {
				continue
			}
			out[ratio] = sparseMs
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse baseline: %w", err)
	}
	return out, nil
}
