package experiments

import (
	"fmt"
	"io"

	"indexedrec/internal/core"
	"indexedrec/internal/pram"
	"indexedrec/internal/report"
)

func init() {
	register("sched", "ref [5] — scheduling study: block vs cyclic distribution of the efficient OrdinaryIR",
		"compares block and cyclic work distribution on the efficient solver", runSched)
}

// skewed builds one long chain (written first) plus singleton writes — the
// workload where block distribution clusters all the long-lived work into a
// few processors.
func skewed(chainLen, singles int) *core.System {
	n := chainLen + singles
	m := chainLen + 1 + 2*singles
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < chainLen; i++ {
		s.G[i] = i + 1
		s.F[i] = i
	}
	base := chainLen + 1
	for k := 0; k < singles; k++ {
		s.G[chainLen+k] = base + 2*k
		s.F[chainLen+k] = base + 2*k + 1
	}
	return s
}

func runSched(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "The paper's simulator reference ([5] Haber & Ben-Asher) studies")
	fmt.Fprintln(w, "inefficiency caused by bad schedulings. The efficient OrdinaryIR")
	fmt.Fprintln(w, "variant skips completed traces, so WHERE the long-lived cells sit")
	fmt.Fprintln(w, "decides lock-step time. Workload: one chain of length L written")
	fmt.Fprintln(w, "first, then S singleton updates (complete in round one).")
	fmt.Fprintln(w)

	tb := report.NewTable("block vs cyclic distribution (P = 16, efficient variant)",
		"chain L", "singles S", "block time", "cyclic time", "block/cyclic", "work ratio")
	for _, tc := range []struct{ chain, singles int }{
		{256, 256 * 7},
		{1024, 1024 * 7},
		{4096, 4096 * 7},
		{1024, 0}, // pure chain: mild effect (live suffix shrinks slowly)
	} {
		if opt.Quick && tc.chain > 1024 {
			continue
		}
		s := skewed(tc.chain, tc.singles)
		init := make([]pram.Word, s.M)
		block, err := pram.RunParallelOIRSched(s, pram.OpAdd, init, 16, pram.DistBlock)
		if err != nil {
			return err
		}
		cyclic, err := pram.RunParallelOIRSched(s, pram.OpAdd, init, 16, pram.DistCyclic)
		if err != nil {
			return err
		}
		tb.AddRow(tc.chain, tc.singles, block.Stats.Time, cyclic.Stats.Time,
			float64(block.Stats.Time)/float64(cyclic.Stats.Time),
			float64(block.Stats.Work)/float64(cyclic.Stats.Work))
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nThe work ratios stay ≈ 1 (same computation); the time gap is pure")
	fmt.Fprintln(w, "scheduling — detecting exactly this kind of inefficiency is what the")
	fmt.Fprintln(w, "SimParC line of work was built for.")
	return nil
}
