package experiments

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"indexedrec/internal/grid2d"
	"indexedrec/internal/parallel"
	"indexedrec/internal/report"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

func init() {
	register("grid2d", "E21 — 2-D wavefront grids: cold compile+solve vs warm arena replays on edit-distance DP up to 4096²",
		"times anti-diagonal wavefront solves cold and warm across grid sizes", runGrid2D)
}

// GridBaselineEnv names the environment variable pointing at a checked-in
// BENCH_grid2d.json; when set, runGrid2D fails if any size's warm replay
// regressed more than baselineSlack versus that baseline (the CI perf gate
// for the wavefront hot path).
const GridBaselineEnv = "IRBENCH_GRID_BASELINE"

// gridProcs is the worker count per wavefront round, fixed (like scanProcs)
// so the artifact is comparable across machines.
const gridProcs = 8

// gridGateFloorMs exempts sizes whose baseline warm replay is below this
// many milliseconds from the regression gate — sub-millisecond replays
// jitter too much run to run to gate without flakes.
const gridGateFloorMs = 1.0

// gridAlphabet keeps the random strings on a small alphabet so substitution
// costs mix matches and mismatches rather than degenerating to all-1s.
const gridAlphabet = "acgt"

// randString draws an n-character string over gridAlphabet.
func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = gridAlphabet[rng.Intn(len(gridAlphabet))]
	}
	return string(b)
}

// internalGrid converts the wire grid to the solver's system; the fields
// mirror one for one and slices alias.
func internalGrid(s *ir.Grid2DSystem) (*grid2d.System, error) {
	ring, err := grid2d.RingByName(s.Semiring)
	if err != nil {
		return nil, err
	}
	return &grid2d.System{
		Rows: s.Rows, Cols: s.Cols, Ring: ring,
		A: s.A, B: s.B, D: s.Diag, C: s.C,
		North: s.North, West: s.West, NW: s.NorthWest,
	}, nil
}

// runGrid2D is E21: the wavefront hot path on n×n edit-distance grids. Per
// size it measures the cold path (compile + one solve through the public
// facade) and warm arena replays on a persistent gang — the irserved
// steady state — and checks three invariants: warm values bit-identical to
// cold, zero allocations per warm replay, and rounds = 2n-1 (one gang
// round per anti-diagonal). Machine-readable GRID lines accompany the
// table so CI and the IRBENCH_GRID_BASELINE gate can parse results. A side
// table sweeps the three semiring kernels at one size, and a small-size
// row cross-checks the sequential oracle. The wavefront is depth-limited
// (2n-1 rounds of ≤ n cells), so warm-vs-cold — plan and arena reuse, not
// parallel speedup — is the headline on few physical cores.
func runGrid2D(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	coldReps, warmReps := 3, 8
	if opt.Quick {
		coldReps, warmReps = 2, 3
	}
	sizes := []int{256, 1024, 2048, 4096}
	if opt.Quick {
		sizes = []int{64, 256}
	}
	if opt.N > 0 {
		sizes = []int{opt.N}
	}

	base, err := loadGridBaseline(os.Getenv(GridBaselineEnv))
	if err != nil {
		return err
	}

	ctx := context.Background()
	tb := report.NewTable(
		fmt.Sprintf("edit-distance wavefront: cold vs warm arena replay (procs=%d, cold x%d, warm x%d, best-of)",
			gridProcs, coldReps, warmReps),
		"grid", "cells", "cold ms", "warm ms", "speedup", "rounds", "allocs/op", "identical")

	var machine []string
	for _, n := range sizes {
		sys := workload.EditDistance(randString(rng, n), randString(rng, n))

		var coldRes *ir.Grid2DResult
		coldMs, err := bestOf(coldReps, func() error {
			r, err := ir.SolveGrid2DCtx(ctx, sys, ir.SolveOptions{Procs: gridProcs})
			coldRes = r
			return err
		})
		if err != nil {
			return fmt.Errorf("grid2d n=%d: cold solve: %w", n, err)
		}

		gsys, err := internalGrid(sys)
		if err != nil {
			return err
		}
		gp, err := grid2d.Compile(ctx, gsys)
		if err != nil {
			return fmt.Errorf("grid2d n=%d: compile: %w", n, err)
		}
		arena := gp.NewArena()

		// Settle the heap after the cold solves, then run every warm replay
		// on one persistent gang, as a server worker would.
		runtime.GC()
		gang := parallel.NewGang(gridProcs)
		gctx := parallel.WithGang(ctx, gang)

		var warmRes *grid2d.Result
		warmMs, err := bestOf(warmReps, func() error {
			r, err := arena.SolveCtx(gctx, gsys, gridProcs)
			warmRes = r
			return err
		})
		if err != nil {
			gang.Close()
			return fmt.Errorf("grid2d n=%d: warm replay: %w", n, err)
		}
		identical := float64SlicesEqual(coldRes.Values, warmRes.Values)

		allocs := testing.AllocsPerRun(3, func() {
			if _, err := arena.SolveCtx(gctx, gsys, gridProcs); err != nil {
				panic(err)
			}
		})
		gang.Close()

		if !identical {
			return fmt.Errorf("grid2d n=%d: warm replay diverged from the cold solve", n)
		}
		if warmRes.Rounds != 2*n-1 {
			return fmt.Errorf("grid2d n=%d: %d rounds, want one per anti-diagonal (%d)", n, warmRes.Rounds, 2*n-1)
		}
		// Race instrumentation allocates inside the workers; the zero-alloc
		// contract is only gated in normal builds (the -race path is covered
		// by TestAllExperimentsRunQuick).
		if allocs != 0 && !parallel.RaceEnabled {
			return fmt.Errorf("grid2d n=%d: warm replay allocates (%.0f allocs/op), want 0", n, allocs)
		}
		if prior, ok := base[n]; ok && prior >= gridGateFloorMs && warmMs > prior*baselineSlack {
			// One re-measurement with more reps before failing: a scheduler
			// hiccup during the first best-of window must not fail CI, a
			// real regression will reproduce here.
			gang = parallel.NewGang(gridProcs)
			gctx = parallel.WithGang(ctx, gang)
			retryMs, rerr := bestOf(2*warmReps, func() error {
				_, err := arena.SolveCtx(gctx, gsys, gridProcs)
				return err
			})
			gang.Close()
			if rerr != nil {
				return fmt.Errorf("grid2d n=%d: warm replay: %w", n, rerr)
			}
			if retryMs < warmMs {
				warmMs = retryMs
			}
			if warmMs > prior*baselineSlack {
				return fmt.Errorf("grid2d n=%d: warm replay %.3f ms regressed >%.0f%% vs baseline %.3f ms",
					n, warmMs, (baselineSlack-1)*100, prior)
			}
		}

		tb.AddRow(fmt.Sprintf("%dx%d", n, n), coldRes.Cells,
			fmt.Sprintf("%.3f", coldMs),
			fmt.Sprintf("%.3f", warmMs),
			fmt.Sprintf("%.2fx", coldMs/warmMs),
			warmRes.Rounds,
			fmt.Sprintf("%.0f", allocs), identical)
		machine = append(machine, fmt.Sprintf(
			"GRID n=%d cold_ms=%.3f warm_ms=%.3f rounds=%d allocs=%.0f identical=%v",
			n, coldMs, warmMs, warmRes.Rounds, allocs, identical))
	}
	tb.Render(w)
	fmt.Fprintln(w)

	// Semiring kernel sweep at the smallest size: the same wavefront
	// schedule drives all three monomorphized kernels, and the affine row
	// doubles as the oracle cross-check (sequential row-major vs parallel).
	{
		n := sizes[0]
		st := report.NewTable(fmt.Sprintf("semiring kernels on a random %dx%d grid (warm x%d)", n, n, warmReps),
			"semiring", "warm ms", "oracle ms", "identical")
		for _, ring := range []string{"affine", "minplus", "maxplus"} {
			sys := workload.RandomGrid2D(rng, n, n, ring, 15)
			gsys, err := internalGrid(sys)
			if err != nil {
				return err
			}
			gp, err := grid2d.Compile(ctx, gsys)
			if err != nil {
				return fmt.Errorf("grid2d %s sweep: %w", ring, err)
			}
			arena := gp.NewArena()
			gang := parallel.NewGang(gridProcs)
			gctx := parallel.WithGang(ctx, gang)
			var warmRes *grid2d.Result
			warmMs, err := bestOf(warmReps, func() error {
				r, err := arena.SolveCtx(gctx, gsys, gridProcs)
				warmRes = r
				return err
			})
			gang.Close()
			if err != nil {
				return fmt.Errorf("grid2d %s sweep: %w", ring, err)
			}
			var oracle *grid2d.Result
			oracleMs, err := bestOf(coldReps, func() error {
				r, err := grid2d.SolveSequential(gsys)
				oracle = r
				return err
			})
			if err != nil {
				return fmt.Errorf("grid2d %s oracle: %w", ring, err)
			}
			same := float64SlicesEqual(warmRes.Values, oracle.Values)
			if !same {
				return fmt.Errorf("grid2d %s sweep: parallel diverged from the sequential oracle", ring)
			}
			st.AddRow(ring, fmt.Sprintf("%.3f", warmMs), fmt.Sprintf("%.3f", oracleMs), same)
		}
		st.Render(w)
		fmt.Fprintln(w)
	}

	for _, line := range machine {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w, "\nEach anti-diagonal is one gang round, so a 2n-1-round wavefront replays")
	fmt.Fprintln(w, "from a warm arena with zero allocations, bit-identical to the cold solve")
	fmt.Fprintln(w, "and to the sequential row-major oracle.")
	return nil
}

// loadGridBaseline parses a BENCH_grid2d.json artifact (irbench -json
// lines) into n -> warm ms, reading the GRID machine lines embedded in
// each record's output. An empty path means no baseline (empty map).
func loadGridBaseline(path string) (map[int]float64, error) {
	out := map[int]float64{}
	if path == "" {
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("grid baseline: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		for _, line := range strings.Split(sc.Text(), `\n`) {
			idx := strings.Index(line, "GRID ")
			if idx < 0 {
				continue
			}
			var n, rounds int
			var coldMs, warmMs, allocs float64
			var identical bool
			if _, err := fmt.Sscanf(line[idx:],
				"GRID n=%d cold_ms=%f warm_ms=%f rounds=%d allocs=%f identical=%t",
				&n, &coldMs, &warmMs, &rounds, &allocs, &identical); err != nil {
				continue
			}
			out[n] = warmMs
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid baseline: %w", err)
	}
	return out, nil
}
