package experiments

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
	"indexedrec/internal/report"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

func init() {
	register("hotpath", "E18 — hot-path engine: gang + arena warm replays vs cold solves, allocation counts",
		"times warm arena replays against cold solves and counts allocations", runHotpath)
}

// BaselineEnv names the environment variable pointing at a checked-in
// BENCH_hotpath.json; when set, runHotpath fails if any family's warm replay
// regressed more than baselineSlack versus that baseline (the CI perf gate).
const BaselineEnv = "IRBENCH_HOTPATH_BASELINE"

// baselineSlack is the tolerated warm-replay slowdown versus the checked-in
// baseline before the experiment fails (1.10 = 10% regression budget).
const baselineSlack = 1.10

// hotpathProcs is the simulated processor count of the warm replays. Fixed
// rather than NumCPU-derived so the artifact is comparable across machines
// (the repo's experiments simulate p processors with p goroutines).
const hotpathProcs = 8

// runHotpath measures the steady-state warm path this PR builds: a compiled
// plan replayed through a reusable arena, with one persistent worker gang
// carrying all rounds and monomorphized kernels in the combine loops. For
// each family it reports the cold direct solve, the warm arena replay, the
// allocations per warm replay (which must be zero), and whether the warm
// values are bit-identical to the cold solve's. Machine-readable HOTPATH
// lines accompany the table so CI (and the IRBENCH_HOTPATH_BASELINE gate)
// can parse results without scraping the table.
func runHotpath(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	coldReps, warmReps := 3, 10
	if opt.Quick {
		coldReps, warmReps = 2, 4
	}
	nOrd := opt.n(1 << 17)

	base, err := loadHotpathBaseline(os.Getenv(BaselineEnv))
	if err != nil {
		return err
	}

	tb := report.NewTable(
		fmt.Sprintf("hot-path warm replays (procs=%d, cold x%d, warm x%d, best-of)", hotpathProcs, coldReps, warmReps),
		"family", "n", "cold ms", "warm ms", "speedup", "allocs/op", "identical")

	ctx := context.Background()
	sopt := ordinary.Options{Procs: hotpathProcs}

	type row struct {
		family string
		n      int
		cold   func() (any, error)
		// prepare compiles the plan and builds the arena; warm runs one
		// replay on the gang-carrying context. warmQuiet is the same replay
		// without boxing the result into any — the harness would otherwise
		// charge its own interface conversion to the allocation gate.
		prepare   func() error
		warm      func(ctx context.Context) (any, error)
		warmQuiet func(ctx context.Context) error
		equal     func(a, b any) bool
	}
	var rows []row

	{ // ordinary: int64 addition through the monomorphized IntAdd kernel
		s := workload.RandomOrdinary(rng, nOrd, nOrd)
		init := workload.InitInt64(rng, s.M, 1<<20)
		var arena *ordinary.Arena[int64]
		rows = append(rows, row{
			family: "ordinary", n: s.N,
			cold: func() (any, error) {
				r, err := ordinary.SolveCtx[int64](ctx, s, ir.IntAdd{}, init, sopt)
				if err != nil {
					return nil, err
				}
				return r.Values, nil
			},
			prepare: func() error {
				p, err := ordinary.CompilePlan(ctx, s)
				if err != nil {
					return err
				}
				arena = ordinary.NewArena[int64](p)
				return nil
			},
			warm: func(gctx context.Context) (any, error) {
				r, err := arena.SolveCtx(gctx, ir.IntAdd{}, init, sopt)
				if err != nil {
					return nil, err
				}
				return r.Values, nil
			},
			warmQuiet: func(gctx context.Context) error {
				_, err := arena.SolveCtx(gctx, ir.IntAdd{}, init, sopt)
				return err
			},
			equal: func(a, b any) bool { return int64SlicesEqual(a.([]int64), b.([]int64)) },
		})
	}

	floatCoeffs := func(n int) (a, b, c, d []float64) {
		a, b, c, d = make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = 1 + rng.Float64()
			b[i] = rng.Float64()
			c[i] = rng.Float64() / 16
			d[i] = 1 + rng.Float64()
		}
		return
	}
	x0For := func(m int) []float64 {
		x0 := make([]float64, m)
		for x := range x0 {
			x0[x] = rng.Float64()
		}
		return x0
	}

	{ // linear: the affine form through the ChainOp Mat2 kernel
		s := workload.RandomOrdinary(rng, nOrd, nOrd)
		a, b, _, _ := floatCoeffs(s.N)
		x0 := x0For(s.M)
		var plan *moebius.Plan
		var arena *moebius.Arena
		rows = append(rows, row{
			family: "linear", n: s.N,
			cold: func() (any, error) {
				return ir.SolveLinearCtx(ctx, s.M, s.G, s.F, a, b, x0, ir.SolveOptions{Procs: hotpathProcs})
			},
			prepare: func() error {
				p, err := moebius.CompilePlan(ctx, s.M, s.G, s.F)
				if err != nil {
					return err
				}
				plan, arena = p, p.NewArena()
				// One untimed replay pages the arena in and warms branches.
				_, lerr := plan.SolveLinearArenaCtx(ctx, arena, a, b, x0, sopt)
				return lerr
			},
			warm: func(gctx context.Context) (any, error) {
				return plan.SolveLinearArenaCtx(gctx, arena, a, b, x0, sopt)
			},
			warmQuiet: func(gctx context.Context) error {
				_, err := plan.SolveLinearArenaCtx(gctx, arena, a, b, x0, sopt)
				return err
			},
			equal: func(a, b any) bool { return float64SlicesEqual(a.([]float64), b.([]float64)) },
		})
	}

	{ // moebius: the full fractional-linear form on the same shape class
		s := workload.RandomOrdinary(rng, nOrd, nOrd)
		a, b, c, d := floatCoeffs(s.N)
		x0 := x0For(s.M)
		var plan *moebius.Plan
		var arena *moebius.Arena
		rows = append(rows, row{
			family: "moebius", n: s.N,
			cold: func() (any, error) {
				return ir.SolveMoebiusCtx(ctx, s.M, s.G, s.F, a, b, c, d, x0, ir.SolveOptions{Procs: hotpathProcs})
			},
			prepare: func() error {
				p, err := moebius.CompilePlan(ctx, s.M, s.G, s.F)
				if err != nil {
					return err
				}
				plan, arena = p, p.NewArena()
				return nil
			},
			warm: func(gctx context.Context) (any, error) {
				return plan.SolveArenaCtx(gctx, arena, a, b, c, d, x0, sopt)
			},
			warmQuiet: func(gctx context.Context) error {
				_, err := plan.SolveArenaCtx(gctx, arena, a, b, c, d, x0, sopt)
				return err
			},
			equal: func(a, b any) bool { return float64SlicesEqual(a.([]float64), b.([]float64)) },
		})
	}

	var machine []string
	for _, r := range rows {
		var coldVal any
		coldMs, err := bestOf(coldReps, func() error {
			v, err := r.cold()
			coldVal = v
			return err
		})
		if err != nil {
			return fmt.Errorf("hotpath %s: cold solve: %w", r.family, err)
		}
		if err := r.prepare(); err != nil {
			return fmt.Errorf("hotpath %s: compile: %w", r.family, err)
		}

		// The gang outlives the timed loop, exactly as a server worker's
		// does; warm replays reuse it round after round. Settle the heap
		// first so the cold solves' garbage can't bill a GC pause to a
		// warm (allocation-free) replay.
		runtime.GC()
		gang := parallel.NewGang(hotpathProcs)
		gctx := parallel.WithGang(ctx, gang)

		var warmVal any
		warmMs, err := bestOf(warmReps, func() error {
			v, err := r.warm(gctx)
			warmVal = v
			return err
		})
		if err != nil {
			gang.Close()
			return fmt.Errorf("hotpath %s: warm replay: %w", r.family, err)
		}
		identical := r.equal(coldVal, warmVal)

		// AllocsPerRun pins GOMAXPROCS to 1 for the measurement; the gang
		// path is unchanged by that, so this measures the real replay.
		allocs := testing.AllocsPerRun(5, func() {
			if err := r.warmQuiet(gctx); err != nil {
				panic(err)
			}
		})
		gang.Close()

		if !identical {
			return fmt.Errorf("hotpath %s: warm replay diverged from the direct solve", r.family)
		}
		if allocs != 0 {
			return fmt.Errorf("hotpath %s: warm replay allocates (%.0f allocs/op), want 0", r.family, allocs)
		}
		if prior, ok := base[r.family]; ok && warmMs > prior*baselineSlack {
			return fmt.Errorf("hotpath %s: warm replay %.3f ms regressed >%.0f%% vs baseline %.3f ms",
				r.family, warmMs, (baselineSlack-1)*100, prior)
		}

		tb.AddRow(r.family, r.n,
			fmt.Sprintf("%.3f", coldMs),
			fmt.Sprintf("%.3f", warmMs),
			fmt.Sprintf("%.2fx", coldMs/warmMs),
			fmt.Sprintf("%.0f", allocs),
			identical)
		machine = append(machine, fmt.Sprintf(
			"HOTPATH family=%s n=%d cold_ms=%.3f warm_ms=%.3f speedup=%.2f allocs=%.0f identical=%v",
			r.family, r.n, coldMs, warmMs, coldMs/warmMs, allocs, identical))
	}

	tb.Render(w)
	fmt.Fprintln(w)
	for _, line := range machine {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w, "\nWarm replays run through per-plan arenas on a persistent worker gang")
	fmt.Fprintln(w, "with monomorphized combine kernels: zero allocations per replay, and")
	fmt.Fprintln(w, "the identical column certifies bit-equal results against direct solves.")
	return nil
}

// loadHotpathBaseline parses a BENCH_hotpath.json artifact (irbench -json
// lines) into family -> warm ms, reading the HOTPATH machine lines embedded
// in each record's output. An empty path means no baseline (empty map).
func loadHotpathBaseline(path string) (map[string]float64, error) {
	out := map[string]float64{}
	if path == "" {
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hotpath baseline: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		for _, line := range strings.Split(sc.Text(), `\n`) {
			idx := strings.Index(line, "HOTPATH ")
			if idx < 0 {
				continue
			}
			var family string
			var n int
			var cold, warm, speedup, allocs float64
			var identical bool
			if _, err := fmt.Sscanf(line[idx:],
				"HOTPATH family=%s n=%d cold_ms=%f warm_ms=%f speedup=%f allocs=%f identical=%t",
				&family, &n, &cold, &warm, &speedup, &allocs, &identical); err != nil {
				continue
			}
			out[family] = warm
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hotpath baseline: %w", err)
	}
	return out, nil
}
