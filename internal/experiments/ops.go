package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/workload"
)

func init() {
	register("ops", "generality — every operator through both solvers vs the sequential loop",
		"cross-checks every registered operator against the sequential oracle", runOps)
}

// runOps demonstrates the algebra-parametric claim of the paper: any
// associative op works for OrdinaryIR and any commutative monoid with
// atomic powers works for GIR. Each operator is run on shared instances and
// checked cell-by-cell against the sequential loop.
func runOps(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	n := opt.n(4096)
	oirSys := workload.RandomOrdinary(rng, n, n/2)
	girSys := workload.RandomGIR(rng, 64, 48) // small: traces grow fast

	type opCase struct {
		name string
		oir  func() (bool, error) // runs OIR path, returns match
		gir  func() (bool, error)
	}
	checkOIR := func(op core.Semigroup[int64], init []int64) (bool, error) {
		want := core.RunSequential[int64](oirSys, op, init)
		res, err := ordinary.Solve[int64](oirSys, op, init, ordinary.Options{})
		if err != nil {
			return false, err
		}
		for x := range want {
			if res.Values[x] != want[x] {
				return false, nil
			}
		}
		return true, nil
	}
	checkGIR := func(op core.CommutativeMonoid[int64], init []int64) (bool, error) {
		want := core.RunSequential[int64](girSys, op, init)
		res, err := gir.Solve[int64](girSys, op, init, gir.Options{})
		if err != nil {
			return false, err
		}
		for x := range want {
			if res.Values[x] != want[x] {
				return false, nil
			}
		}
		return true, nil
	}

	small := make([]int64, oirSys.M)
	for i := range small {
		small[i] = rng.Int63n(1000)
	}
	girInit := make([]int64, girSys.M)
	for i := range girInit {
		girInit[i] = rng.Int63n(97)
	}

	cases := []opCase{
		{"add (mod 2^31)", func() (bool, error) { return checkOIR(core.AddMod{M: 1 << 31}, small) },
			func() (bool, error) { return checkGIR(core.AddMod{M: 1 << 31}, girInit) }},
		{"mul (mod p)", func() (bool, error) { return checkOIR(core.MulMod{M: 1_000_003}, small) },
			func() (bool, error) { return checkGIR(core.MulMod{M: 1_000_003}, girInit) }},
		{"max", func() (bool, error) { return checkOIR(core.IntMax{}, small) },
			func() (bool, error) { return checkGIR(core.IntMax{}, girInit) }},
		{"min", func() (bool, error) { return checkOIR(core.IntMin{}, small) },
			func() (bool, error) { return checkGIR(core.IntMin{}, girInit) }},
		{"xor", func() (bool, error) { return checkOIR(core.IntXor{}, small) },
			func() (bool, error) { return checkGIR(core.IntXor{}, girInit) }},
		{"gcd", func() (bool, error) { return checkOIR(core.Gcd{}, small) },
			func() (bool, error) { return checkGIR(core.Gcd{}, girInit) }},
	}

	fmt.Fprintf(w, "OIR instance: %v; GIR instance: %v\n\n", oirSys, girSys)
	fmt.Fprintf(w, "%-16s %-18s %-18s\n", "operator", "OrdinaryIR == seq", "GIR == seq")
	for _, c := range cases {
		a, err := c.oir()
		if err != nil {
			return fmt.Errorf("ops: %s OIR: %w", c.name, err)
		}
		b, err := c.gir()
		if err != nil {
			return fmt.Errorf("ops: %s GIR: %w", c.name, err)
		}
		fmt.Fprintf(w, "%-16s %-18v %-18v\n", c.name, a, b)
		if !a || !b {
			return fmt.Errorf("ops: %s mismatch", c.name)
		}
	}
	// Non-commutative op: OIR only (GIR's contract excludes it by type).
	strInit := make([]string, oirSys.M)
	for i := range strInit {
		strInit[i] = string(rune('a' + i%26))
	}
	wantS := core.RunSequential[string](oirSys, core.Concat{}, strInit)
	resS, err := ordinary.Solve[string](oirSys, core.Concat{}, strInit, ordinary.Options{})
	if err != nil {
		return err
	}
	okS := true
	for x := range wantS {
		if resS.Values[x] != wantS[x] {
			okS = false
			break
		}
	}
	fmt.Fprintf(w, "%-16s %-18v %-18s\n", "concat (non-comm)", okS, "n/a (needs commutativity)")
	if !okS {
		return fmt.Errorf("ops: concat mismatch")
	}
	fmt.Fprintln(w, "\nOrdinaryIR preserves operand order (any associative op); GIR")
	fmt.Fprintln(w, "requires commutativity + atomic powers, as the paper proves.")
	return nil
}
