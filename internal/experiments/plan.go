package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"indexedrec/internal/report"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

func init() {
	register("cold_vs_warm", "E17 — compiled plans: cold solve vs compile-once + warm replay, per family",
		"splits compile cost from replay cost for every plan family", runColdVsWarm)
}

// runColdVsWarm measures the compile-once/solve-many split: for each solver
// family it times the direct (cold) solve, one ir.Compile, and the warm
// Plan replay, verifying along the way that the replayed values are
// bit-identical to the direct solve's. The warm column is what a repeat
// customer of irserved's plan cache pays per request.
func runColdVsWarm(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	coldReps, warmReps := 3, 10
	if opt.Quick {
		coldReps, warmReps = 2, 4
	}
	nOrd := opt.n(1 << 17)
	nGen := opt.n(1 << 14)

	tb := report.NewTable(
		fmt.Sprintf("cold solve vs warm plan replay (cold x%d, warm x%d, best-of averages)", coldReps, warmReps),
		"family", "n", "m", "cold ms", "compile ms", "warm ms", "warm speedup", "identical")

	type row struct {
		family  string
		n, m    int
		cold    func() (any, error)
		compile func() (*ir.Plan, error)
		warm    func(p *ir.Plan) (any, error)
		equal   func(a, b any) bool
	}

	intInit := func(m int) []int64 { return workload.InitInt64(rng, m, 1<<20) }
	floatCoeffs := func(n int) (a, b, c, d []float64) {
		a, b, c, d = make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = 1 + rng.Float64()
			b[i] = rng.Float64()
			c[i] = rng.Float64() / 16
			d[i] = 1 + rng.Float64()
		}
		return
	}
	x0For := func(m int) []float64 {
		x0 := make([]float64, m)
		for x := range x0 {
			x0[x] = rng.Float64()
		}
		return x0
	}

	ctx := context.Background()
	var rows []row

	{ // ordinary: random permutation-target system, int64 addition
		s := workload.RandomOrdinary(rng, nOrd, nOrd)
		init := intInit(s.M)
		rows = append(rows, row{
			family: "ordinary", n: s.N, m: s.M,
			cold: func() (any, error) {
				r, err := ir.SolveOrdinaryCtx[int64](ctx, s, ir.IntAdd{}, init, ir.SolveOptions{})
				if err != nil {
					return nil, err
				}
				return r.Values, nil
			},
			compile: func() (*ir.Plan, error) { return ir.Compile(s, ir.CompileOptions{}) },
			warm: func(p *ir.Plan) (any, error) {
				r, err := ir.SolveOrdinaryPlanCtx[int64](ctx, p, ir.IntAdd{}, init, ir.SolveOptions{})
				if err != nil {
					return nil, err
				}
				return r.Values, nil
			},
			equal: func(a, b any) bool { return int64SlicesEqual(a.([]int64), b.([]int64)) },
		})
	}

	{ // general: scatter accumulation (g non-distinct), modular product
		s := workload.Scatter(rng, nGen, nGen/8)
		init := intInit(s.M)
		op := ir.MulMod{M: 1_000_003}
		rows = append(rows, row{
			family: "general", n: s.N, m: s.M,
			cold: func() (any, error) {
				r, err := ir.SolveGeneralCtx[int64](ctx, s, op, init, ir.SolveOptions{})
				if err != nil {
					return nil, err
				}
				return r.Values, nil
			},
			compile: func() (*ir.Plan, error) { return ir.Compile(s, ir.CompileOptions{}) },
			warm: func(p *ir.Plan) (any, error) {
				r, err := ir.SolveGeneralPlanCtx[int64](ctx, p, op, init, ir.SolveOptions{})
				if err != nil {
					return nil, err
				}
				return r.Values, nil
			},
			equal: func(a, b any) bool { return int64SlicesEqual(a.([]int64), b.([]int64)) },
		})
	}

	{ // linear: X[g] := a·X[f] + b over a random distinct-g system
		s := workload.RandomOrdinary(rng, nOrd, nOrd)
		a, b, _, _ := floatCoeffs(s.N)
		x0 := x0For(s.M)
		rows = append(rows, row{
			family: "linear", n: s.N, m: s.M,
			cold: func() (any, error) {
				return ir.SolveLinearCtx(ctx, s.M, s.G, s.F, a, b, x0, ir.SolveOptions{})
			},
			compile: func() (*ir.Plan, error) { return ir.CompileMoebius(s.M, s.G, s.F) },
			warm: func(p *ir.Plan) (any, error) {
				sol, err := p.SolveCtx(ctx, ir.PlanData{A: a, B: b, X0: x0})
				if err != nil {
					return nil, err
				}
				return sol.Values, nil
			},
			equal: func(a, b any) bool { return float64SlicesEqual(a.([]float64), b.([]float64)) },
		})
	}

	{ // moebius: the full fractional-linear form on the same shape class
		s := workload.RandomOrdinary(rng, nOrd, nOrd)
		a, b, c, d := floatCoeffs(s.N)
		x0 := x0For(s.M)
		rows = append(rows, row{
			family: "moebius", n: s.N, m: s.M,
			cold: func() (any, error) {
				return ir.SolveMoebiusCtx(ctx, s.M, s.G, s.F, a, b, c, d, x0, ir.SolveOptions{})
			},
			compile: func() (*ir.Plan, error) { return ir.CompileMoebius(s.M, s.G, s.F) },
			warm: func(p *ir.Plan) (any, error) {
				return ir.SolveMoebiusPlanCtx(ctx, p, a, b, c, d, x0, ir.SolveOptions{})
			},
			equal: func(a, b any) bool { return float64SlicesEqual(a.([]float64), b.([]float64)) },
		})
	}

	for _, r := range rows {
		var coldVal any
		coldMs, err := bestOf(coldReps, func() error {
			v, err := r.cold()
			coldVal = v
			return err
		})
		if err != nil {
			return fmt.Errorf("cold_vs_warm %s: cold solve: %w", r.family, err)
		}

		var plan *ir.Plan
		compileMs, err := bestOf(1, func() error {
			p, err := r.compile()
			plan = p
			return err
		})
		if err != nil {
			return fmt.Errorf("cold_vs_warm %s: compile: %w", r.family, err)
		}

		var warmVal any
		warmMs, err := bestOf(warmReps, func() error {
			v, err := r.warm(plan)
			warmVal = v
			return err
		})
		if err != nil {
			return fmt.Errorf("cold_vs_warm %s: warm replay: %w", r.family, err)
		}

		identical := r.equal(coldVal, warmVal)
		if !identical {
			return fmt.Errorf("cold_vs_warm %s: warm replay diverged from the direct solve", r.family)
		}
		tb.AddRow(r.family, r.n, r.m,
			fmt.Sprintf("%.3f", coldMs),
			fmt.Sprintf("%.3f", compileMs),
			fmt.Sprintf("%.3f", warmMs),
			fmt.Sprintf("%.2fx", coldMs/warmMs),
			identical)
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nWarm replays skip structure work entirely: chain decomposition and the")
	fmt.Fprintln(w, "combine schedule (ordinary, linear, moebius) or the dependence DAG and")
	fmt.Fprintln(w, "CAP path counts (general) are baked into the plan, so only the data")
	fmt.Fprintln(w, "phase runs. The identical column certifies bit-equal results.")
	return nil
}

// bestOf runs fn reps times and returns the fastest wall-clock run in
// milliseconds (best-of defeats scheduler noise better than averaging for
// short runs).
func bestOf(reps int, fn func() error) (float64, error) {
	best := -1.0
	for k := 0; k < reps; k++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if elapsed := float64(time.Since(start).Microseconds()) / 1000; best < 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func float64SlicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // bitwise-identical finite values compare equal
			return false
		}
	}
	return true
}
