package experiments

import (
	"fmt"
	"io"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/graph"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/paperfig"
	"indexedrec/internal/report"
	"indexedrec/internal/trace"
)

func init() {
	register("fig1", "Fig. 1 — trace table of an ordinary IR loop",
		"prints the worked-example trace table cell by cell", runFig1)
	register("fig2", "Fig. 2 — trace concatenation (pointer jumping) rounds",
		"shows the trace shrinking round by round under pointer jumping", runFig2)
	register("fig4", "Fig. 4 — tree vs list trace structure (GIR vs IR)",
		"contrasts the tree-shaped GIR trace with the list-shaped IR trace", runFig4)
	register("fig5", "Fig. 5 — Fibonacci power expansion of X_i = X_{i-1}⊗X_{i-2}",
		"expands the two-term recurrence into its Fibonacci-exponent powers", runFig5)
	register("fig6", "Fig. 6 — dependence graph of A_i = A_{i-1}⊗A_{i-2}",
		"draws the dependence graph the CAP engine schedules", runFig6)
	register("fig9", "Figs. 7–9 — CAP iterations (paths multiplication + addition)",
		"steps the CAP matrices through paths multiplication and addition", runFig9)
}

func runFig1(w io.Writer, opt Options) error {
	s, _ := paperfig.Fig1System()
	trs, err := trace.Ordinary(s)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Loop (0-based cells):")
	for i := 0; i < s.N; i++ {
		fmt.Fprintf(w, "  i=%d:  A[%d] := A[%d] (x) A[%d]\n", i, s.G[i], s.F[i], s.G[i])
	}
	fmt.Fprintln(w)
	tb := report.NewTable("final traces (paper-verbatim: A'[6]=A[2]A[3]A[6], A'[8]=A[5]A[8])",
		"cell", "A'[cell]")
	for x := 1; x < s.M; x++ {
		tb.AddRow(x, trace.FormatOrdinary(trs[x]))
	}
	tb.Render(w)
	return nil
}

func runFig2(w io.Writer, opt Options) error {
	n := opt.n(10)
	s := paperfig.Fig2System(n)
	init := make([]string, n)
	for x := range init {
		init[x] = fmt.Sprintf("A[%d]", x)
	}
	fmt.Fprintf(w, "Chain instance A[i+1] := A[i] (x) A[i+1], n=%d cells.\n", n)
	fmt.Fprintln(w, "Pointer state after each lock-step concatenation round")
	fmt.Fprintln(w, "(-1 = trace complete; pointers double each round):")
	res, err := ordinary.Solve[string](s, core.Concat{}, init, ordinary.Options{
		Procs: 1,
		OnRound: func(round int, st *ordinary.JumperState) {
			fmt.Fprintf(w, "  round %d: active=%2d  N = %v\n", round, st.Active, st.Next)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rounds: %d = ceil(log2 %d)\n\n", res.Rounds, n-1)
	tb := report.NewTable("completed traces", "cell", "A'[cell]")
	for x := 0; x < n; x++ {
		tb.AddRow(x, res.Values[x])
	}
	tb.Render(w)
	return nil
}

func runFig4(w io.Writer, opt Options) error {
	n := opt.n(12)
	girSh, err := trace.Shapes(paperfig.Fig4GIR(n))
	if err != nil {
		return err
	}
	oirSh, err := trace.Shapes(paperfig.Fig4IR(n))
	if err != nil {
		return err
	}
	tb := report.NewTable(
		fmt.Sprintf("trace shape, n=%d: GIR A[i]:=A[i-1]⊗A[i-2] vs IR A[i]:=A[i-1]⊗A[i]", n),
		"cell", "GIR leaves", "GIR depth", "GIR list?", "IR leaves", "IR depth", "IR list?")
	for x := 2; x < n; x++ {
		tb.AddRow(x, girSh[x].Leaves.String(), girSh[x].Depth, girSh[x].IsList,
			oirSh[x].Leaves.String(), oirSh[x].Depth, oirSh[x].IsList)
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nGIR leaf counts grow as Fibonacci numbers (tree); IR grows linearly (list).")

	// Draw the two small trees the figure contrasts (cell 5 of each).
	girTree, err := trace.BuildTree(paperfig.Fig4GIR(6), 5, 1000)
	if err != nil {
		return err
	}
	oirTree, err := trace.BuildTree(paperfig.Fig4IR(6), 5, 1000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nGIR trace of A[5] (%s):\n%s", girTree.Infix(), girTree)
	fmt.Fprintf(w, "\nIR trace of A[5] (%s):\n%s", oirTree.Infix(), oirTree)
	return nil
}

func runFig5(w io.Writer, opt Options) error {
	n := opt.n(paperfig.Fig5N + 7)
	s := paperfig.Fig4GIR(n)
	pw, err := trace.Powers(s)
	if err != nil {
		return err
	}
	// Cross-check through the full GIR pipeline (dependence graph + CAP).
	init := make([]int64, n)
	for x := range init {
		init[x] = 2
	}
	res, err := gir.Solve[int64](s, core.MulMod{M: 1_000_003}, init, gir.Options{})
	if err != nil {
		return err
	}
	tb := report.NewTable("trace powers of X_i = X_{i-1} ⊗ X_{i-2} (cells 0,1 initial)",
		"cell", "trace (symbolic oracle)", "trace (GIR/CAP pipeline)")
	for x := 2; x < n; x++ {
		girTerms := make([]trace.PowerTerm, len(res.Powers[x]))
		for k, t := range res.Powers[x] {
			girTerms[k] = trace.PowerTerm{Cell: t.Sink, Exp: t.Count}
		}
		tb.AddRow(x, trace.FormatPowers(pw[x]), trace.FormatPowers(girTerms))
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nExponents are Fibonacci numbers: A'[n] = A[0]^fib(n-1) ⊗ A[1]^fib(n).")
	return nil
}

func runFig6(w io.Writer, opt Options) error {
	s := paperfig.Fig4GIR(5)
	d, err := gir.Build(s)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Loop: for i = 2..4: A[i] := A[i-1] ⊗ A[i-2]  (cells 0..4)")
	fmt.Fprintln(w, "Dependence graph (leaf nodes = initial values; edges consumer → operand):")
	name := func(v int) string {
		if v < d.M {
			return fmt.Sprintf("leaf A0[%d]", v)
		}
		return fmt.Sprintf("iter %d (writes A[%d])", v-d.M, s.G[v-d.M])
	}
	for v := d.M; v < d.G.N; v++ {
		for _, e := range d.G.Out[v] {
			fmt.Fprintf(w, "  %-22s -> %-22s [%s]\n", name(v), name(e.To), e.Label)
		}
	}
	return nil
}

func runFig9(w io.Writer, opt Options) error {
	show := func(title string, g *cap.Graph) error {
		fmt.Fprintf(w, "%s\n", title)
		printEdges := func(round int, edges [][]cap.Edge) {
			fmt.Fprintf(w, "  after round %d:\n", round)
			for v := range edges {
				for _, e := range edges[v] {
					fmt.Fprintf(w, "    v%d -> v%d [%s]\n", v, e.To, e.Label)
				}
			}
		}
		fmt.Fprintln(w, "  initial edges:")
		for v := range g.Out {
			for _, e := range g.Out[v] {
				fmt.Fprintf(w, "    v%d -> v%d [%s]\n", v, e.To, e.Label)
			}
		}
		counts, st, err := cap.CountSquaring(g, cap.SquaringOptions{Procs: 1, OnRound: printEdges})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  CAP complete in %d rounds; final counts:\n", st.Rounds)
		for v := range counts {
			if !g.IsSink(v) {
				fmt.Fprintf(w, "    CAP(v%d) = %v\n", v, counts[v])
			}
		}
		fmt.Fprintln(w)
		return nil
	}
	if err := show("Double chain (paper's example: labels become 2^i):",
		cap.FromDAG(graph.DoubleChain(5))); err != nil {
		return err
	}
	return show("Fibonacci dependence DAG (Fig. 6's graph):",
		cap.FromDAG(graph.Fibonacci(6)))
}
