package experiments

import (
	"fmt"
	"io"
	"math"
	"math/big"
	"math/rand"
	"time"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/graph"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/pram"
	"indexedrec/internal/report"
	"indexedrec/internal/scan"
	"indexedrec/internal/simparc"
	"indexedrec/internal/trace"
	"indexedrec/internal/workload"
)

func init() {
	register("fig3", "Fig. 3 — OrdinaryIR instructions vs processors on the SimParC reconstruction (n=50,000)",
		"reproduces the headline instruction-count-vs-processors curve", runFig3)
	register("scaling", "E10 — measured time vs the T(n,P)=(n/P)·log n law (PRAM cost model)",
		"fits measured round counts against the paper's scaling law", runScaling)
	register("crossover", "E10b — parallel/sequential crossover processor count vs n",
		"finds the processor count where the parallel solver overtakes the loop", runCrossover)
	register("ablation-pow", "E11 — atomic powers vs naive trace expansion in GIR",
		"ablates the atomic-powers optimization to show the blow-up it avoids", runAblationPow)
	register("ablation-cap", "E12 — CAP engine work/depth comparison",
		"compares CAP work and depth against the direct general solver", runAblationCAP)
	register("speedup", "E13 — native multicore wall-clock speedup of OrdinaryIR",
		"measures real wall-clock speedup over the sequential loop", runSpeedup)
	register("scan-vs-ir", "E14 — linear recurrence: classical scan vs Möbius OrdinaryIR",
		"races a classical prefix scan against the Möbius reduction", runScanVsIR)
}

func runFig3(w io.Writer, opt Options) error {
	n := opt.n(50_000)
	s := workload.Chain(n)
	init := make([]int64, s.M)
	for x := range init {
		init[x] = int64(x % 97)
	}
	add := func(a, b int64) int64 { return a + b }

	seq, err := simparc.RunSeqIR(s, add, init, 1<<34)
	if err != nil {
		return err
	}
	tb := report.NewTable(
		fmt.Sprintf("simulated assembly instructions (lock-step cycles), n=%d", n),
		"P", "parallel IR (cycles)", "original loop (cycles)", "parallel work (instrs)", "speedup vs loop")
	var px, py, sy []float64
	for _, p := range opt.procs() {
		res, err := simparc.RunParallelOIR(s, add, init, p, 1<<34)
		if err != nil {
			return err
		}
		// Correctness guard: the simulated program must agree with the
		// reference loop.
		want := core.RunSequential[int64](s, core.IntAdd{}, init)
		for x := range want {
			if res.Values[x] != want[x] {
				return fmt.Errorf("fig3: P=%d cell %d mismatch", p, x)
			}
		}
		tb.AddRow(p, res.Cycles, seq.Cycles, res.Instrs,
			float64(seq.Cycles)/float64(res.Cycles))
		px = append(px, float64(p))
		py = append(py, float64(res.Cycles))
		sy = append(sy, float64(seq.Cycles))
	}
	tb.Render(w)
	fmt.Fprintln(w)
	report.LogLogPlot(w, "Fig. 3 reproduction", "processors", "instructions", 60, 16,
		report.Series{Name: "Parallel IR Solution", Marker: '*', X: px, Y: py},
		report.Series{Name: "Original IR Loop", Marker: 'o', X: px, Y: sy},
	)
	fmt.Fprintln(w, "\nShape check vs the paper: the loop is flat in P; the parallel curve")
	fmt.Fprintln(w, "falls as (n/P)·log n and crosses the loop near P ≈ c·log n.")
	return nil
}

func runScaling(w io.Writer, opt Options) error {
	tb := report.NewTable("PRAM cost model vs the law T(n,P) = (n/P)·log2(n)·c",
		"n", "P", "measured time", "(n/P)·log2 n", "ratio c")
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		if opt.Quick && n > 1<<14 {
			break
		}
		s := workload.Chain(n)
		init := make([]int64, s.M)
		for _, p := range []int{1, 4, 16, 64, 256} {
			run, err := pram.RunParallelOIR(s, pram.OpAdd, init, p)
			if err != nil {
				return err
			}
			law := float64(n) / float64(p) * math.Log2(float64(n))
			tb.AddRow(n, p, run.Stats.Time, law, float64(run.Stats.Time)/law)
		}
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nThe ratio column is the constant factor; its stability across (n, P)")
	fmt.Fprintln(w, "confirms the (n/P)·log n law of the paper's work-shared algorithm.")
	return nil
}

func runCrossover(w io.Writer, opt Options) error {
	tb := report.NewTable("processors needed for the parallel algorithm to beat the loop",
		"n", "sequential time", "crossover P", "c = P*/log2 n")
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		if opt.Quick && n > 1<<14 {
			break
		}
		s := workload.Chain(n)
		init := make([]int64, s.M)
		seqRun, err := pram.RunSequentialIR(s, pram.OpAdd, init)
		if err != nil {
			return err
		}
		crossover := -1
		for p := 1; p <= 1<<14; p *= 2 {
			run, err := pram.RunParallelOIR(s, pram.OpAdd, init, p)
			if err != nil {
				return err
			}
			if run.Stats.Time < seqRun.Stats.Time {
				crossover = p
				break
			}
		}
		tb.AddRow(n, seqRun.Stats.Time, crossover,
			float64(crossover)/math.Log2(float64(n)))
	}
	tb.Render(w)
	return nil
}

func runAblationPow(w io.Writer, opt Options) error {
	tb := report.NewTable("GIR on A[i]=A[i-1]⊗A[i-2]: atomic powers vs naive expansion",
		"n", "trace length (ops, naive)", "pow ops (CAP route)", "CAP rounds")
	for _, n := range []int{8, 16, 32, 64, 128} {
		s := workload.Fibonacci(n)
		sh, err := trace.Shapes(s)
		if err != nil {
			return err
		}
		naive := new(big.Int).Sub(sh[n-1].Leaves, big.NewInt(1)) // ops = leaves-1
		init := make([]int64, n)
		for x := range init {
			init[x] = 3
		}
		res, err := gir.Solve[int64](s, core.MulMod{M: 1_000_003}, init, gir.Options{})
		if err != nil {
			return err
		}
		tb.AddRow(n, naive.String(), res.PowCalls, res.CAPStats.Rounds)
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nNaive evaluation needs fib(n) operations (exponential); treating the")
	fmt.Fprintln(w, "power as atomic (paper §4) keeps the work linear in n.")
	return nil
}

func runAblationCAP(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	tb := report.NewTable("CAP engines on random DAGs (work = label operations; matrix = dense)",
		"graph", "nodes", "edges", "squaring rounds", "squaring mults", "squaring ms", "dp ms", "matrix ms", "wavefront ms")
	cases := []struct {
		name string
		g    *graph.DAG
	}{
		{"chain-512", graph.Chain(512)},
		{"double-chain-256", graph.DoubleChain(256)},
		{"fibonacci-128", graph.Fibonacci(128)},
		{"random-400", graph.Random(rng, 400, 4)},
		{"layered-20x20", graph.Layered(rng, 20, 20, 3)},
	}
	for _, tc := range cases {
		g := cap.FromDAG(tc.g)
		t0 := time.Now()
		_, st, err := cap.CountSquaring(g, cap.SquaringOptions{})
		if err != nil {
			return err
		}
		sqMs := time.Since(t0)
		t0 = time.Now()
		if _, err := cap.CountDP(g); err != nil {
			return err
		}
		dpMs := time.Since(t0)
		t0 = time.Now()
		if _, err := cap.CountMatrix(g, 0); err != nil {
			return err
		}
		mxMs := time.Since(t0)
		t0 = time.Now()
		if _, err := cap.CountWavefront(g, 0); err != nil {
			return err
		}
		wfMs := time.Since(t0)
		tb.AddRow(tc.name, tc.g.N, tc.g.NumEdges(), st.Rounds, st.Mults,
			float64(sqMs.Microseconds())/1000, float64(dpMs.Microseconds())/1000,
			float64(mxMs.Microseconds())/1000, float64(wfMs.Microseconds())/1000)
	}
	tb.Render(w)
	return nil
}

func runSpeedup(w io.Writer, opt Options) error {
	n := opt.n(1 << 20)
	s := workload.Chain(n)
	op := core.MulMod{M: 1_000_003}
	rng := rand.New(rand.NewSource(opt.seed()))
	init := workload.InitInt64(rng, s.M, op.M)

	t0 := time.Now()
	want := core.RunSequential[int64](s, op, init)
	seqD := time.Since(t0)

	tb := report.NewTable(
		fmt.Sprintf("native goroutine OrdinaryIR, n=%d (sequential loop: %v)", n, seqD),
		"goroutines", "wall time", "vs sequential loop", "rounds")
	for _, p := range []int{1, 2, 4, 8} {
		t0 = time.Now()
		res, err := ordinary.Solve[int64](s, op, init, ordinary.Options{Procs: p})
		if err != nil {
			return err
		}
		d := time.Since(t0)
		for x := range want {
			if res.Values[x] != want[x] {
				return fmt.Errorf("speedup: mismatch at cell %d", x)
			}
		}
		tb.AddRow(p, d.String(), fmt.Sprintf("%.2fx", float64(seqD)/float64(d)), res.Rounds)
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nNote: the parallel algorithm does Θ(n log n) work vs the loop's Θ(n), so")
	fmt.Fprintln(w, "on a small multicore the loop usually wins — exactly the paper's P=1 regime;")
	fmt.Fprintln(w, "the asymptotic win needs P ≫ log n processors (see fig3/crossover).")
	return nil
}

func runScanVsIR(w io.Writer, opt Options) error {
	n := opt.n(1 << 18)
	rng := rand.New(rand.NewSource(opt.seed()))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()*1.2 - 0.6
		b[i] = rng.Float64()*2 - 1
	}
	x0 := rng.Float64()

	t0 := time.Now()
	want := scan.LinearRecurrence(a, b, x0)
	seqD := time.Since(t0)

	t0 = time.Now()
	got1 := scan.LinearRecurrenceParallel(a, b, x0, 0)
	scanD := time.Since(t0)

	// Same recurrence through the paper's route: a Möbius system over the
	// chain g(i)=i, f(i)=i-1.
	g := make([]int, n-1)
	f := make([]int, n-1)
	for i := range g {
		g[i], f[i] = i+1, i
	}
	ms := moebius.NewLinear(n, g, f, a[1:], b[1:])
	xs := make([]float64, n)
	xs[0] = x0
	t0 = time.Now()
	got2, err := ms.Solve(xs, ordinary.Options{})
	if err != nil {
		return err
	}
	irD := time.Since(t0)

	maxErr1, maxErr2 := 0.0, 0.0
	for i := range want {
		maxErr1 = math.Max(maxErr1, relErr(got1[i], want[i]))
		maxErr2 = math.Max(maxErr2, relErr(got2[i], want[i]))
	}
	tb := report.NewTable(fmt.Sprintf("first-order linear recurrence, n=%d", n),
		"method", "wall time", "max rel err vs sequential")
	tb.AddRow("sequential loop", seqD.String(), 0.0)
	tb.AddRow("Kogge-Stone scan (refs [2,4])", scanD.String(), maxErr1)
	tb.AddRow("Moebius + OrdinaryIR (paper §3)", irD.String(), maxErr2)
	tb.Render(w)
	fmt.Fprintln(w, "\nBoth parallel routes compute the same values; the paper's route")
	fmt.Fprintln(w, "generalizes to arbitrary index maps g, f where scan requires a chain.")

	// The same recurrence at the ASSEMBLY level, mod p, on the SimParC
	// reconstruction: affine-map composition is the 2-word special case of
	// the Möbius product, so this is §3's "O(log n) steps" made literal.
	const p = 99991
	na := n
	if na > 1<<14 {
		na = 1 << 14
	}
	ai := make([]int64, na)
	bi := make([]int64, na)
	for i := range ai {
		ai[i] = int64(i%89 + 1)
		bi[i] = int64(i % 97)
	}
	tb2 := report.NewTable(
		fmt.Sprintf("assembly-level affine scan mod %d, n=%d (simulated cycles)", p, na),
		"P", "cycles", "rounds")
	for _, procs := range []int{1, 16, 256} {
		out, res, err := simparc.RunAffineScan(ai, bi, 1, p, procs, 1<<32)
		if err != nil {
			return err
		}
		// Spot-check against the sequential recurrence.
		x := int64(1)
		for i := range ai {
			x = (ai[i]*x + bi[i]) % p
			if out[i] != x {
				return fmt.Errorf("scan-vs-ir: asm affine scan wrong at %d", i)
			}
		}
		tb2.AddRow(procs, res.Cycles, res.Rounds)
	}
	fmt.Fprintln(w)
	tb2.Render(w)
	return nil
}

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	return math.Abs(got-want) / math.Max(1, math.Abs(want))
}
