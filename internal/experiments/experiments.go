// Package experiments regenerates every table and figure of the paper's
// evaluation (the experiment index of DESIGN.md): the worked-example
// figures 1–9, the Livermore classification study, the Fig. 3 performance
// plot on the SimParC reconstruction, the T(n,P) = (n/P)·log n scaling law,
// and the ablations. cmd/irbench is a thin CLI over this package; the
// top-level benchmarks reuse the same entry points.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"indexedrec/internal/parallel"
)

// Options tune an experiment run; zero values select the paper's defaults.
type Options struct {
	// N is the instance size (default per experiment; Fig. 3 uses the
	// paper's n = 50,000).
	N int
	// Procs is the processor sweep (default 1..1024 in powers of two).
	Procs []int
	// Seed drives the deterministic generators.
	Seed int64
	// Quick shrinks sizes for fast CI runs.
	Quick bool
}

func (o Options) n(def int) int {
	if o.N > 0 {
		return o.N
	}
	if o.Quick && def > 4096 {
		return 4096
	}
	return def
}

func (o Options) procs() []int {
	if len(o.Procs) > 0 {
		return o.Procs
	}
	ps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	if o.Quick {
		return ps[:6]
	}
	return ps
}

func (o Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1997 // the paper's year; any fixed value works
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Desc is a one-line plain-language description of what the
	// experiment measures and what a healthy run shows (irbench -list).
	Desc string
	Run  func(w io.Writer, opt Options) error
}

var registry = map[string]Experiment{}

func register(id, title, desc string, run func(w io.Writer, opt Options) error) {
	registry[id] = Experiment{ID: id, Title: title, Desc: desc, Run: run}
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get looks an experiment up by ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes the experiment with the given ID.
func Run(id string, w io.Writer, opt Options) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (try: %v)", id, ids())
	}
	fmt.Fprintf(w, "### %s — %s\n\n", e.ID, e.Title)
	return e.Run(w, opt)
}

// RunCtx is Run bounded by ctx: the experiment body runs in its own
// goroutine (recovering panics into errors) and RunCtx returns ctx.Err() as
// soon as the context is done, without waiting for the body. Callers that
// exit on error (the CLI) tolerate the abandoned goroutine; callers that
// must not leak should use Run.
func RunCtx(ctx context.Context, id string, w io.Writer, opt Options) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		done <- func() (err error) {
			defer parallel.RecoverTo(&err)
			return Run(id, w, opt)
		}()
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func ids() []string {
	var s []string
	for id := range registry {
		s = append(s, id)
	}
	sort.Strings(s)
	return s
}
