package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"indexedrec/internal/report"
	"indexedrec/internal/session"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

func init() {
	register("session", "E19 — streaming sessions: amortized append cost vs cold re-solve of the concatenated system",
		"amortizes incremental appends against re-solving from scratch", runSession)
}

// runSession measures what the streaming-session subsystem buys over the
// only alternative an append-only client otherwise has: re-solving the
// whole concatenated system cold after every batch. For the ordinary and
// linear/Möbius families it opens a session on the first batch, streams the
// rest through Append, and compares the amortized per-append cost against
// one cold plan solve (compile + solve) of the final concatenated system —
// the price each incremental result would cost without sessions. The final
// session state is checked bit-identical (ordinary, exact int ops) or
// value-identical (Möbius, same sequential fold) against the cold solve.
func runSession(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	ctx := context.Background()
	n := opt.n(1 << 17)
	appendCounts := []int{16, 64, 256}
	if opt.Quick {
		appendCounts = []int{8, 32}
	}

	tb := report.NewTable(
		"streaming session vs cold re-solve of the concatenated system",
		"family", "n", "appends", "batch k", "cold solve ms", "session ms", "per-append ms", "advantage", "identical")

	for _, appends := range appendCounts {
		k := n / appends
		total := k * appends // keep batches exact

		{ // ordinary: distinct-g random system, int64 addition (exact)
			s := workload.RandomOrdinary(rng, total, total)
			init := workload.InitInt64(rng, s.M, 1<<20)

			var coldVals []int64
			coldMs, err := bestOf(1, func() error {
				p, err := ir.CompileCtx(ctx, s, ir.CompileOptions{Family: ir.FamilyOrdinary})
				if err != nil {
					return err
				}
				sol, err := p.SolveCtx(ctx, ir.PlanData{Op: "int64-add", InitInt: init})
				if err != nil {
					return err
				}
				coldVals = sol.ValuesInt
				return nil
			})
			if err != nil {
				return fmt.Errorf("session ordinary cold: %w", err)
			}

			var sess *session.Session
			sessMs, err := bestOf(1, func() error {
				var err error
				sess, err = session.Open(ctx, session.Spec{
					Family: ir.FamilyOrdinary,
					System: &ir.System{M: s.M, N: k, G: s.G[:k], F: s.F[:k]},
					Op:     "int64-add", InitInt: init,
				})
				if err != nil {
					return err
				}
				for at := k; at < total; at += k {
					if _, err := sess.Append(ctx, session.Batch{
						G: s.G[at : at+k], F: s.F[at : at+k],
					}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("session ordinary stream: %w", err)
			}
			got, _, _ := sess.Values()
			identical := int64SlicesEqual(got, coldVals)
			if !identical {
				return fmt.Errorf("session ordinary: stream diverged from the cold solve")
			}
			perAppend := sessMs / float64(appends)
			tb.AddRow("ordinary", total, appends, k,
				fmt.Sprintf("%.3f", coldMs),
				fmt.Sprintf("%.3f", sessMs),
				fmt.Sprintf("%.4f", perAppend),
				fmt.Sprintf("%.1fx", coldMs/perAppend),
				identical)
		}

		{ // linear: X[g] := a·X[f] + b on the same shape class
			s := workload.RandomOrdinary(rng, total, total)
			a, b := make([]float64, total), make([]float64, total)
			for i := range a {
				a[i] = 1 + rng.Float64()
				b[i] = rng.Float64()
			}
			x0 := make([]float64, s.M)
			for i := range x0 {
				x0[i] = rng.Float64()
			}

			var coldVals []float64
			coldMs, err := bestOf(1, func() error {
				p, err := ir.CompileMoebiusCtx(ctx, s.M, s.G, s.F)
				if err != nil {
					return err
				}
				sol, err := p.SolveCtx(ctx, ir.PlanData{A: a, B: b, X0: x0})
				if err != nil {
					return err
				}
				coldVals = sol.Values
				return nil
			})
			if err != nil {
				return fmt.Errorf("session linear cold: %w", err)
			}

			var sess *session.Session
			sessMs, err := bestOf(1, func() error {
				var err error
				sess, err = session.Open(ctx, session.Spec{
					Family: ir.FamilyMoebius,
					M:      s.M, G: s.G[:k], F: s.F[:k],
					A: a[:k], B: b[:k], X0: x0,
				})
				if err != nil {
					return err
				}
				for at := k; at < total; at += k {
					if _, err := sess.Append(ctx, session.Batch{
						G: s.G[at : at+k], F: s.F[at : at+k],
						A: a[at : at+k], B: b[at : at+k],
					}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("session linear stream: %w", err)
			}
			_, _, got := sess.Values()
			// The session folds sequentially; the parallel cold solve
			// reassociates, so compare within the repo's usual tolerance
			// rather than bitwise (the service fuzzer pins the exact
			// contract).
			identical := float64SlicesClose(got, coldVals, 1e-9)
			if !identical {
				return fmt.Errorf("session linear: stream diverged from the cold solve")
			}
			perAppend := sessMs / float64(appends)
			tb.AddRow("linear", total, appends, k,
				fmt.Sprintf("%.3f", coldMs),
				fmt.Sprintf("%.3f", sessMs),
				fmt.Sprintf("%.4f", perAppend),
				fmt.Sprintf("%.1fx", coldMs/perAppend),
				identical)
		}
	}

	tb.Render(w)
	fmt.Fprintln(w, "\nThe cold column is what every batch would cost without sessions: compile")
	fmt.Fprintln(w, "plus solve of the full concatenated system, again after each append. The")
	fmt.Fprintln(w, "session streams each batch through the resume state (ordinary: prefix")
	fmt.Fprintln(w, "summary per write chain; linear/Moebius: running 2x2 prefix product), so")
	fmt.Fprintln(w, "the amortized per-append cost stays flat while the cold cost grows with n")
	fmt.Fprintln(w, "- the advantage column grows with the append count.")
	return nil
}

// float64SlicesClose compares element-wise within a relative tolerance
// (parallel cold solves reassociate float folds).
func float64SlicesClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		m := 1.0
		if ab := abs64(a[i]); ab > m {
			m = ab
		}
		if d > tol*m {
			return false
		}
	}
	return true
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
