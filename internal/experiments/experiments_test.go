package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig9",
		"livermore", "livermore-exec", "loop23", "scaling", "crossover",
		"ablation-pow", "ablation-cap", "speedup", "scan-vs-ir", "ops", "sched",
		"cold_vs_warm", "hotpath", "session", "blockedscan", "grid2d",
		"sparse",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	for _, e := range All() {
		if e.Desc == "" {
			t.Errorf("experiment %q has no one-line description (irbench -list)", e.ID)
		}
		if strings.Contains(e.Desc, "\n") {
			t.Errorf("experiment %q description spans lines", e.ID)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, Options{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks the output mentions its key artifact.
func TestAllExperimentsRunQuick(t *testing.T) {
	expected := map[string]string{
		"fig1":           "A[2]A[3]A[6]",
		"fig2":           "rounds:",
		"fig3":           "Original IR Loop",
		"fig4":           "Fibonacci",
		"fig5":           "A[0]^",
		"fig6":           "leaf A0[",
		"fig9":           "CAP complete",
		"livermore":      "indexed recurrence",
		"livermore-exec": "auto-parallelized",
		"loop23":         "without any data-dependence",
		"scaling":        "ratio",
		"crossover":      "crossover",
		"ablation-pow":   "atomic",
		"ablation-cap":   "squaring",
		"speedup":        "goroutines",
		"scan-vs-ir":     "Kogge-Stone",
		"ops":            "commutativity",
		"sched":          "scheduling",
		"cold_vs_warm":   "identical",
		"hotpath":        "HOTPATH",
		"session":        "amortized",
		"blockedscan":    "SCAN",
		"grid2d":         "GRID",
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			opt := Options{Quick: true}
			switch e.ID {
			case "fig3":
				opt.N = 2000
				opt.Procs = []int{1, 8, 64}
			case "speedup":
				opt.N = 1 << 14
			case "scan-vs-ir":
				opt.N = 1 << 12
			case "loop23":
				opt.N = 256
			}
			if err := Run(e.ID, &buf, opt); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if want := expected[e.ID]; want != "" && !strings.Contains(out, want) {
				t.Fatalf("%s output missing %q:\n%s", e.ID, want, out)
			}
		})
	}
}
