package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenFigures pins the fully deterministic figure reproductions to
// golden files: any change to the trace tables, dependence-graph rendering
// or CAP iteration output is a deliberate, reviewed change (regenerate with
// `UPDATE_GOLDEN=1 go test ./internal/experiments -run Golden`).
func TestGoldenFigures(t *testing.T) {
	for _, id := range []string{"fig1", "fig4", "fig5", "fig6", "fig9"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "### %s — %s\n\n", id, registry[id].Title)
			if err := registry[id].Run(&buf, Options{}); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", id+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read %s: %v", golden, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s output drifted from %s.\n--- got ---\n%s\n--- want ---\n%s",
					id, golden, buf.String(), want)
			}
		})
	}
}
