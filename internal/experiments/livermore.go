package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"indexedrec/internal/lang"
	"indexedrec/internal/livermore"
	"indexedrec/internal/report"
)

func init() {
	register("livermore", "§1 table — Livermore Loops recurrence classification",
		"classifies each Livermore loop as ordinary, general, or unsupported", runLivermore)
	register("livermore-exec", "E8b — auto-parallelized execution of every DSL-encoded kernel",
		"runs every classified kernel through the DSL pipeline and checks outputs", runLivermoreExec)
	register("loop23", "§3 example — Livermore loop 23 via the Möbius transformation",
		"solves the implicit hydrodynamics fragment as a Möbius recurrence", runLoop23)
}

func runLivermoreExec(w io.Writer, opt Options) error {
	n := opt.n(512)
	tb := report.NewTable(
		fmt.Sprintf("every DSL-encoded kernel: sequential interpreter vs auto-parallelized, n=%d", n),
		"#", "kernel", "strategy", "seq ms", "par ms", "max rel err")
	for _, k := range livermore.All() {
		if k.DSL == "" {
			continue
		}
		loop, err := lang.Parse(k.DSL)
		if err != nil {
			return fmt.Errorf("kernel %d: %w", k.ID, err)
		}
		c := lang.Compile(loop)

		seq := k.Setup(n)
		t0 := time.Now()
		if err := lang.Run(loop, seq); err != nil {
			return fmt.Errorf("kernel %d seq: %w", k.ID, err)
		}
		seqD := time.Since(t0)

		par := k.Setup(n)
		t0 = time.Now()
		if err := c.Execute(par, 0); err != nil {
			return fmt.Errorf("kernel %d par: %w", k.ID, err)
		}
		parD := time.Since(t0)

		maxErr := 0.0
		for name, want := range seq.Arrays {
			got := par.Arrays[name]
			for i := range want {
				maxErr = math.Max(maxErr, relErr(got[i], want[i]))
			}
		}
		if maxErr > 1e-9 {
			return fmt.Errorf("kernel %d: parallel deviates by %g", k.ID, maxErr)
		}
		tb.AddRow(k.ID, k.Name, c.Strategy(),
			float64(seqD.Microseconds())/1000, float64(parD.Microseconds())/1000, maxErr)
	}
	tb.Render(w)
	fmt.Fprintln(w, "\nEvery kernel the classifier places is executed by its parallel")
	fmt.Fprintln(w, "strategy and checked against the sequential interpreter.")
	return nil
}

func runLivermore(w io.Writer, opt Options) error {
	rows, err := livermore.ClassificationTable()
	if err != nil {
		return err
	}
	tb := report.NewTable("Livermore Loops classification (mechanical vs curated)",
		"#", "kernel", "classifier form", "classifier bucket", "curated bucket", "agree")
	for _, r := range rows {
		mech := "n/a"
		agree := "-"
		if r.DSLForm != "n/a" {
			mech = r.DSLBucket.String()
			if r.Agree {
				agree = "yes"
			} else {
				agree = "NO"
			}
		}
		tb.AddRow(r.ID, r.Name, r.DSLForm, mech, r.Curated.Bucket.String(), agree)
	}
	tb.Render(w)

	counts := livermore.BucketCounts()
	fmt.Fprintln(w)
	tb2 := report.NewTable("bucket totals (curated)", "bucket", "kernels")
	for _, b := range []lang.Bucket{lang.BucketNone, lang.BucketLinear, lang.BucketIndexed, lang.BucketUnknown} {
		tb2.AddRow(b.String(), counts[b])
	}
	tb2.Render(w)
	fmt.Fprintln(w, `
The paper's in-text table lost its digits to OCR; the legible anchors are
reproduced exactly: kernels 7 and 8 contain no recurrences, kernel 5 is a
linear recurrence, and kernel 23 is the paper's own indexed-recurrence
example. Kernel 2's disagreement is expected: its level-wise independence
needs index analysis, which the syntactic IR framework deliberately omits.`)
	return nil
}

func runLoop23(w io.Writer, opt Options) error {
	k := livermore.ByID(23)
	n := opt.n(2048)
	loop, err := lang.Parse(k.DSL)
	if err != nil {
		return err
	}
	an := lang.Analyze(loop)
	fmt.Fprintf(w, "DSL:      %s\n", k.DSL)
	fmt.Fprintf(w, "analysis: %s\n", an.Describe())
	fmt.Fprintf(w, "strategy: %s\n\n", lang.Compile(loop).Strategy())

	seq := k.Setup(n)
	t0 := time.Now()
	if err := lang.Run(loop, seq); err != nil {
		return err
	}
	seqD := time.Since(t0)

	par := k.Setup(n)
	t0 = time.Now()
	if err := lang.Compile(loop).Execute(par, 0); err != nil {
		return err
	}
	parD := time.Since(t0)

	maxErr := 0.0
	for i, wv := range seq.Arrays["X"] {
		maxErr = math.Max(maxErr, relErr(par.Arrays["X"][i], wv))
	}
	tb := report.NewTable(fmt.Sprintf("loop 23 (j=1 column), n=%d rows", n),
		"path", "wall time", "max rel err")
	tb.AddRow("sequential interpreter", seqD.String(), 0.0)
	tb.AddRow("auto-parallelized (Moebius+OIR, O(log n) steps)", parD.String(), maxErr)
	tb.Render(w)
	fmt.Fprintln(w, "\nThe loop was parallelized without any data-dependence analysis,")
	fmt.Fprintln(w, "exactly as the paper's §3 concludes.")
	return nil
}
