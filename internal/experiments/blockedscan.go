package experiments

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
	"indexedrec/internal/report"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

func init() {
	register("blockedscan", "E20 — work-optimal blocked scan: O(n) combines and n/P + log P depth vs pointer jumping on long write chains",
		"benchmarks the blocked-scan schedule against pointer jumping on chains", runBlockedScan)
}

// ScanBaselineEnv names the environment variable pointing at a checked-in
// BENCH_scan.json; when set, runBlockedScan fails if any size's warm blocked
// replay regressed more than baselineSlack versus that baseline (the CI perf
// gate for the blocked hot path).
const ScanBaselineEnv = "IRBENCH_SCAN_BASELINE"

// scanProcs is the simulated processor count, fixed (like hotpathProcs) so
// the artifact is comparable across machines.
const scanProcs = 8

// scanGateFloorMs exempts sizes whose baseline warm replay is below this
// many milliseconds from the regression gate: sub-millisecond replays
// jitter by tens of percent run to run, so gating them would only make CI
// flaky. The large sizes — where a real regression in the blocked hot path
// would show — are always gated.
const scanGateFloorMs = 1.0

// warmJumpCap bounds the sizes for which a pointer-jumping *plan* is
// compiled for the warm comparison: a recorded jumping schedule stores every
// round's gather list (O(n log n) int32s), which at n = 10^7 is gigabytes.
// Beyond the cap the cold direct solve is the only jumping reference.
const warmJumpCap = 1 << 18

// runBlockedScan is E20: the work-optimality ablation on the blocked-scan
// ordinary schedule. On one length-n write chain — pointer jumping's worst
// case, ⌈log₂ n⌉ rounds of n combines each — it measures the cold direct
// jumping solve, the warm jumping plan replay (small n only, see
// warmJumpCap), and the warm blocked replay, and reports both schedules'
// exact combine counts. Blocked work stays ~2n while jumping grows as
// n·log n, so the gap widens with n; allocations per warm blocked replay
// must be zero and the values bit-identical to jumping (IntAdd is exactly
// associative). Machine-readable SCAN lines accompany the tables so CI and
// the IRBENCH_SCAN_BASELINE gate can parse results. Two side tables show
// the P-sweep at fixed n and the schedule-selection heuristic across chain
// shapes. With the simulated-P harness on few physical cores the headline
// is the work ratio, not wall-clock scaling.
func runBlockedScan(w io.Writer, opt Options) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	coldReps, warmReps := 3, 8
	if opt.Quick {
		coldReps, warmReps = 2, 3
	}
	sizes := []int{10_000, 100_000, 1_000_000, 10_000_000}
	if opt.Quick {
		sizes = []int{1 << 12, 1 << 14}
	}
	if opt.N > 0 {
		sizes = []int{opt.N}
	}

	base, err := loadScanBaseline(os.Getenv(ScanBaselineEnv))
	if err != nil {
		return err
	}

	ctx := context.Background()
	sopt := ordinary.Options{Procs: scanProcs}

	tb := report.NewTable(
		fmt.Sprintf("blocked scan vs pointer jumping on Chain(n) (procs=%d, cold x%d, warm x%d, best-of)",
			scanProcs, coldReps, warmReps),
		"n", "cold jump ms", "warm jump ms", "warm blocked ms", "speedup",
		"jump combines", "blocked combines", "work ratio", "allocs/op", "identical")

	var machine []string
	for _, n := range sizes {
		s := workload.Chain(n)
		init := workload.InitInt64(rng, s.M, 1<<20)

		var coldRes *ordinary.Result[int64]
		coldMs, err := bestOf(coldReps, func() error {
			r, err := ordinary.SolveCtx[int64](ctx, s, ir.IntAdd{}, init, sopt)
			coldRes = r
			return err
		})
		if err != nil {
			return fmt.Errorf("blockedscan n=%d: cold jumping solve: %w", n, err)
		}

		bp, err := ordinary.CompilePlan(ctx, s)
		if err != nil {
			return fmt.Errorf("blockedscan n=%d: compile: %w", n, err)
		}
		if got := bp.Schedule(); got != "blocked-scan" {
			return fmt.Errorf("blockedscan n=%d: auto selection picked %q, want blocked-scan", n, got)
		}
		arena := ordinary.NewArena[int64](bp)

		var jp *ordinary.Plan
		var jarena *ordinary.Arena[int64]
		if n <= warmJumpCap {
			jp, err = ordinary.CompilePlanOpts(ctx, s, ordinary.PlanOptions{Schedule: ordinary.ScheduleJumping})
			if err != nil {
				return fmt.Errorf("blockedscan n=%d: compile jumping: %w", n, err)
			}
			jarena = ordinary.NewArena[int64](jp)
		}

		// Settle the heap after the cold solves, then run every warm replay
		// on one persistent gang, as a server worker would.
		runtime.GC()
		gang := parallel.NewGang(scanProcs)
		gctx := parallel.WithGang(ctx, gang)

		var warmRes *ordinary.Result[int64]
		warmMs, err := bestOf(warmReps, func() error {
			r, err := arena.SolveCtx(gctx, ir.IntAdd{}, init, sopt)
			warmRes = r
			return err
		})
		if err != nil {
			gang.Close()
			return fmt.Errorf("blockedscan n=%d: warm blocked replay: %w", n, err)
		}
		identical := int64SlicesEqual(coldRes.Values, warmRes.Values)
		blockedCombines := warmRes.Combines

		warmJumpMs := -1.0
		if jarena != nil {
			warmJumpMs, err = bestOf(warmReps, func() error {
				_, err := jarena.SolveCtx(gctx, ir.IntAdd{}, init, sopt)
				return err
			})
			if err != nil {
				gang.Close()
				return fmt.Errorf("blockedscan n=%d: warm jumping replay: %w", n, err)
			}
		}

		allocs := testing.AllocsPerRun(3, func() {
			if _, err := arena.SolveCtx(gctx, ir.IntAdd{}, init, sopt); err != nil {
				panic(err)
			}
		})
		gang.Close()

		if !identical {
			return fmt.Errorf("blockedscan n=%d: blocked replay diverged from the jumping solve", n)
		}
		// The race detector's instrumentation allocates inside the workers;
		// the zero-alloc contract only holds (and is only gated) in normal
		// builds. TestAllExperimentsRunQuick runs this under -race.
		if allocs != 0 && !parallel.RaceEnabled {
			return fmt.Errorf("blockedscan n=%d: warm blocked replay allocates (%.0f allocs/op), want 0", n, allocs)
		}
		if prior, ok := base[n]; ok && prior >= scanGateFloorMs && warmMs > prior*baselineSlack {
			// One re-measurement with more reps before failing: a scheduler
			// hiccup during the first best-of window must not fail CI, a
			// real code regression will reproduce here.
			gang = parallel.NewGang(scanProcs)
			gctx = parallel.WithGang(ctx, gang)
			retryMs, rerr := bestOf(2*warmReps, func() error {
				_, err := arena.SolveCtx(gctx, ir.IntAdd{}, init, sopt)
				return err
			})
			gang.Close()
			if rerr != nil {
				return fmt.Errorf("blockedscan n=%d: warm blocked replay: %w", n, rerr)
			}
			if retryMs < warmMs {
				warmMs = retryMs
			}
			if warmMs > prior*baselineSlack {
				return fmt.Errorf("blockedscan n=%d: warm blocked replay %.3f ms regressed >%.0f%% vs baseline %.3f ms",
					n, warmMs, (baselineSlack-1)*100, prior)
			}
		}

		warmJumpCell := "-"
		speedRef := coldMs
		if warmJumpMs >= 0 {
			warmJumpCell = fmt.Sprintf("%.3f", warmJumpMs)
			speedRef = warmJumpMs
		}
		tb.AddRow(n,
			fmt.Sprintf("%.3f", coldMs),
			warmJumpCell,
			fmt.Sprintf("%.3f", warmMs),
			fmt.Sprintf("%.2fx", speedRef/warmMs),
			coldRes.Combines, blockedCombines,
			fmt.Sprintf("%.2fx", float64(coldRes.Combines)/float64(blockedCombines)),
			fmt.Sprintf("%.0f", allocs), identical)
		machine = append(machine, fmt.Sprintf(
			"SCAN n=%d cold_jump_ms=%.3f warm_jump_ms=%.3f warm_blocked_ms=%.3f jump_combines=%d blocked_combines=%d allocs=%.0f identical=%v",
			n, coldMs, warmJumpMs, warmMs, coldRes.Combines, blockedCombines, allocs, identical))
	}
	tb.Render(w)
	fmt.Fprintln(w)

	// P-sweep at the largest size: the n/P reduce/apply phases dominate, so
	// simulated-P mostly redistributes the same O(n) work (true scaling
	// needs physical cores; the combine counts above are the invariant).
	nSweep := sizes[len(sizes)-1]
	{
		s := workload.Chain(nSweep)
		init := workload.InitInt64(rng, s.M, 1<<20)
		p, err := ordinary.CompilePlan(ctx, s)
		if err != nil {
			return err
		}
		arena := ordinary.NewArena[int64](p)
		pt := report.NewTable(fmt.Sprintf("warm blocked replay vs simulated P (n=%d)", nSweep),
			"procs", "warm ms")
		for _, procs := range []int{1, 2, 4, 8} {
			gang := parallel.NewGang(procs)
			gctx := parallel.WithGang(ctx, gang)
			ms, err := bestOf(warmReps, func() error {
				_, err := arena.SolveCtx(gctx, ir.IntAdd{}, init, ordinary.Options{Procs: procs})
				return err
			})
			gang.Close()
			if err != nil {
				return fmt.Errorf("blockedscan procs=%d: %w", procs, err)
			}
			pt.AddRow(procs, fmt.Sprintf("%.3f", ms))
		}
		pt.Render(w)
		fmt.Fprintln(w)
	}

	// Schedule selection across forest shapes: k chains of length n/k. The
	// heuristic takes blocked only when the longest chain reaches the
	// segment length (256); shorter chains finish in few jumping rounds
	// anyway, so the blocked bookkeeping would be pure overhead there.
	{
		ks := []int{1, 256, 65536}
		if opt.Quick {
			ks = []int{1, 4, 256}
		}
		st := report.NewTable(fmt.Sprintf("schedule selection on Chains(n=%d, k)", nSweep),
			"chains k", "chain length", "schedule")
		for _, k := range ks {
			s := workload.Chains(nSweep, k)
			p, err := ordinary.CompilePlan(ctx, s)
			if err != nil {
				return fmt.Errorf("blockedscan chains k=%d: %w", k, err)
			}
			st.AddRow(k, nSweep/k, p.Schedule())
		}
		st.Render(w)
		fmt.Fprintln(w)
	}

	for _, line := range machine {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w, "\nBlocked combine counts stay ~2n while jumping's grow as n·log n, so the")
	fmt.Fprintln(w, "work ratio — and with it the cold-vs-warm gap — widens with n. Warm")
	fmt.Fprintln(w, "blocked replays allocate nothing and are bit-identical to jumping.")
	return nil
}

// loadScanBaseline parses a BENCH_scan.json artifact (irbench -json lines)
// into n -> warm blocked ms, reading the SCAN machine lines embedded in each
// record's output. An empty path means no baseline (empty map).
func loadScanBaseline(path string) (map[int]float64, error) {
	out := map[int]float64{}
	if path == "" {
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scan baseline: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		for _, line := range strings.Split(sc.Text(), `\n`) {
			idx := strings.Index(line, "SCAN ")
			if idx < 0 {
				continue
			}
			var n int
			var coldJump, warmJump, warmBlocked, allocs float64
			var jumpC, blockedC int64
			var identical bool
			if _, err := fmt.Sscanf(line[idx:],
				"SCAN n=%d cold_jump_ms=%f warm_jump_ms=%f warm_blocked_ms=%f jump_combines=%d blocked_combines=%d allocs=%f identical=%t",
				&n, &coldJump, &warmJump, &warmBlocked, &jumpC, &blockedC, &allocs, &identical); err != nil {
				continue
			}
			out[n] = warmBlocked
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan baseline: %w", err)
	}
	return out, nil
}
