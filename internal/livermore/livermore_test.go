package livermore

import (
	"math"
	"testing"

	"indexedrec/internal/lang"
)

const testN = 64

func TestAllKernelsPresent(t *testing.T) {
	ks := All()
	if len(ks) != 24 {
		t.Fatalf("got %d kernels, want 24", len(ks))
	}
	for i, k := range ks {
		if k.ID != i+1 {
			t.Fatalf("kernel %d has ID %d", i, k.ID)
		}
		if k.Name == "" || k.Setup == nil || k.Native == nil || k.Out == "" {
			t.Fatalf("kernel %d incomplete", k.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if k := ByID(23); k == nil || k.ID != 23 {
		t.Fatal("ByID(23) failed")
	}
	if ByID(99) != nil {
		t.Fatal("ByID(99) should be nil")
	}
}

func TestNativesRunFiniteAndDeterministic(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			e1 := k.Setup(testN)
			k.Native(testN, e1)
			e2 := k.Setup(testN)
			k.Native(testN, e2)
			out1, out2 := e1.Arrays[k.Out], e2.Arrays[k.Out]
			if len(out1) == 0 {
				t.Fatalf("kernel %d: empty output array %q", k.ID, k.Out)
			}
			for i := range out1 {
				if math.IsNaN(out1[i]) || math.IsInf(out1[i], 0) {
					t.Fatalf("kernel %d: non-finite output at %d: %v", k.ID, i, out1[i])
				}
				if out1[i] != out2[i] {
					t.Fatalf("kernel %d: non-deterministic at %d", k.ID, i)
				}
			}
		})
	}
}

func TestDSLMatchesNative(t *testing.T) {
	// For every kernel with a DSL encoding, interpreting the DSL on a
	// fresh environment must produce exactly the same arrays as the
	// native implementation (they encode the same loop).
	for _, k := range All() {
		if k.DSL == "" {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) {
			loop, err := lang.Parse(k.DSL)
			if err != nil {
				t.Fatalf("kernel %d DSL: %v", k.ID, err)
			}
			envDSL := k.Setup(testN)
			if err := lang.Run(loop, envDSL); err != nil {
				t.Fatalf("kernel %d DSL run: %v", k.ID, err)
			}
			envNat := k.Setup(testN)
			k.Native(testN, envNat)
			for name, want := range envNat.Arrays {
				got := envDSL.Arrays[name]
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
						t.Fatalf("kernel %d array %s[%d]: DSL %v, native %v",
							k.ID, name, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestDSLKernelsParallelizeCorrectly(t *testing.T) {
	// Every DSL kernel whose classified form has a parallel strategy must
	// produce the sequential result through Compiled.Execute.
	for _, k := range All() {
		if k.DSL == "" {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) {
			loop, err := lang.Parse(k.DSL)
			if err != nil {
				t.Fatal(err)
			}
			seq := k.Setup(testN)
			if err := lang.Run(loop, seq); err != nil {
				t.Fatal(err)
			}
			par := k.Setup(testN)
			if err := lang.Compile(loop).Execute(par, 4); err != nil {
				t.Fatalf("kernel %d Execute: %v", k.ID, err)
			}
			for name, want := range seq.Arrays {
				got := par.Arrays[name]
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
						t.Fatalf("kernel %d array %s[%d]: parallel %v, sequential %v",
							k.ID, name, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestLivermoreClassification(t *testing.T) {
	rows, err := ClassificationTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("%d rows", len(rows))
	}
	byID := make(map[int]Row, 24)
	for _, r := range rows {
		byID[r.ID] = r
	}
	// The paper-legible anchors.
	for _, id := range []int{7, 8} {
		if byID[id].Curated.Bucket != lang.BucketNone {
			t.Errorf("kernel %d: curated %v, paper says no recurrence", id, byID[id].Curated.Bucket)
		}
	}
	if byID[5].Curated.Bucket != lang.BucketLinear {
		t.Errorf("kernel 5: curated %v, paper says linear recurrence", byID[5].Curated.Bucket)
	}
	if byID[23].Curated.Bucket != lang.BucketIndexed {
		t.Errorf("kernel 23: curated %v, paper says indexed recurrence", byID[23].Curated.Bucket)
	}
	// The mechanical classifier must agree with the curated bucket for
	// every DSL-encoded kernel except kernel 2, where disjointness needs
	// index analysis the syntactic framework deliberately lacks.
	for _, r := range rows {
		if r.DSLForm == "n/a" {
			continue
		}
		if r.ID == 2 {
			if r.Agree {
				t.Errorf("kernel 2: expected documented disagreement, got agreement")
			}
			continue
		}
		if !r.Agree {
			t.Errorf("kernel %d (%s): classifier %v (%s) vs curated %v",
				r.ID, r.Name, r.DSLBucket, r.DSLForm, r.Curated.Bucket)
		}
	}
}

func TestBucketCounts(t *testing.T) {
	counts := BucketCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 24 {
		t.Fatalf("bucket counts sum to %d: %v", total, counts)
	}
	if counts[lang.BucketIndexed] < 3 {
		t.Errorf("expected at least the anchors 13, 14, 23 indexed: %v", counts)
	}
}

func TestKernel23IsPaperExample(t *testing.T) {
	k := ByID(23)
	loop, err := lang.Parse(k.DSL)
	if err != nil {
		t.Fatal(err)
	}
	an := lang.Analyze(loop)
	if an.Form != lang.FormLinearExtended {
		t.Fatalf("kernel 23 form = %v (%s), want extended linear (the Möbius example)",
			an.Form, an.Reason)
	}
}

func TestFullVariantsRunFiniteAndDeterministic(t *testing.T) {
	for _, fk := range FullVariants() {
		fk := fk
		t.Run(fk.Name, func(t *testing.T) {
			e1 := fk.Setup(256)
			fk.Run(256, e1)
			e2 := fk.Setup(256)
			fk.Run(256, e2)
			out1, out2 := e1.Arrays[fk.Out], e2.Arrays[fk.Out]
			if len(out1) == 0 {
				t.Fatalf("empty output %q", fk.Out)
			}
			sum := 0.0
			for i := range out1 {
				if math.IsNaN(out1[i]) || math.IsInf(out1[i], 0) {
					t.Fatalf("non-finite at %d: %v", i, out1[i])
				}
				if out1[i] != out2[i] {
					t.Fatalf("non-deterministic at %d", i)
				}
				sum += math.Abs(out1[i])
			}
			if sum == 0 {
				t.Fatal("kernel produced all zeros — probably did nothing")
			}
		})
	}
}

func TestFullKernel21MatchesNaiveProduct(t *testing.T) {
	fk := FullVariants()[4]
	if fk.ID != 21 {
		t.Fatal("variant ordering changed")
	}
	n := 64
	e := fk.Setup(n)
	vy, cx := e.Arrays["VY"], e.Arrays["CX"]
	d := int(e.Scalars["d"])
	want := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			for k := 0; k < n; k++ {
				want[i*d+j] += vy[i*n+k] * cx[k*d+j]
			}
		}
	}
	fk.Run(n, e)
	for i := range want {
		if math.Abs(e.Arrays["PX"][i]-want[i]) > 1e-9 {
			t.Fatalf("PX[%d] = %v, want %v", i, e.Arrays["PX"][i], want[i])
		}
	}
}
