package livermore

import "indexedrec/internal/lang"

// This file carries fuller-fidelity variants of the multi-loop kernels
// whose Kernel.Native deliberately models only the single core loop the
// classification study needs. The full variants exercise the complete
// original loop nests (cascades, double loops, 2-D sweeps) and serve as
// heavier substrate workloads; they are not DSL-matched (the DSL encodes
// the core recurrence only) but are deterministic and finite like the rest.

// FullKernel is a complete multi-loop kernel variant.
type FullKernel struct {
	ID    int
	Name  string
	Setup func(n int) *lang.Env
	Run   func(n int, env *lang.Env)
	Out   string
}

// FullVariants returns the full-fidelity kernels.
func FullVariants() []FullKernel {
	return []FullKernel{
		fullKernel2(), fullKernel6(), fullKernel13(), fullKernel18(), fullKernel21(),
	}
}

// fullKernel2 is the complete ICCG cascade: log n halving levels, each a
// level-wise map over the previous level's results.
func fullKernel2() FullKernel {
	return FullKernel{
		ID: 2, Name: "ICCG full cascade",
		Out: "X",
		Setup: func(n int) *lang.Env {
			return env("n", n, "X", fill(2*n+2, 201, 0.1, 1), "V", fill(2*n+2, 202, 0, 0.5))
		},
		Run: func(n int, e *lang.Env) {
			x, v := e.Arrays["X"], e.Arrays["V"]
			ii := n
			ipntp := 0
			for ii > 1 {
				ipnt := ipntp
				ipntp += ii
				ii /= 2
				i := ipntp
				for k := ipnt + 1; k < ipntp; k += 2 {
					i++
					if i < len(x) && k+1 < len(x) && k-1 >= 0 {
						x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]
					}
				}
			}
		},
	}
}

// fullKernel6 is the complete general linear recurrence: the triangular
// double loop over all (i, k) pairs.
func fullKernel6() FullKernel {
	return FullKernel{
		ID: 6, Name: "general linear recurrence full double loop",
		Out: "W",
		Setup: func(n int) *lang.Env {
			return env("n", n, "W", fill(n, 203, 0.1, 0.5),
				"B", fill(n*8, 204, 0, 1.0/float64(n)))
		},
		Run: func(n int, e *lang.Env) {
			w, b := e.Arrays["W"], e.Arrays["B"]
			for i := 1; i < n; i++ {
				kmax := i
				if kmax > 7 {
					kmax = 7 // banded: keep the triangular loop bounded
				}
				for k := 0; k < kmax; k++ {
					w[i] += b[k*n+i] * w[(i-k)-1]
				}
			}
		},
	}
}

// fullKernel13 is 2-D particle in cell with position updates and the
// charge-deposit scatter.
func fullKernel13() FullKernel {
	return FullKernel{
		ID: 13, Name: "2-D PIC full (move + deposit)",
		Out: "H",
		Setup: func(n int) *lang.Env {
			side := 32
			return env("n", n, "side", side,
				"PX", fill(n, 205, 0, float64(side)),
				"PY", fill(n, 206, 0, float64(side)),
				"VX", fill(n, 207, -1, 1),
				"VY", fill(n, 208, -1, 1),
				"H", make([]float64, side*side))
		},
		Run: func(n int, e *lang.Env) {
			side := int(e.Scalars["side"])
			px, py := e.Arrays["PX"], e.Arrays["PY"]
			vx, vy := e.Arrays["VX"], e.Arrays["VY"]
			h := e.Arrays["H"]
			for p := 0; p < n; p++ {
				px[p] += vx[p]
				py[p] += vy[p]
				ix := int(px[p]) % side
				iy := int(py[p]) % side
				if ix < 0 {
					ix += side
				}
				if iy < 0 {
					iy += side
				}
				h[iy*side+ix]++
			}
		},
	}
}

// fullKernel18 is 2-D explicit hydrodynamics with its three sub-sweeps over
// a kn×jn grid.
func fullKernel18() FullKernel {
	return FullKernel{
		ID: 18, Name: "2-D explicit hydro full (three sweeps)",
		Out: "ZR",
		Setup: func(n int) *lang.Env {
			kn := 16
			jn := n/kn + 2
			size := kn * jn
			e := env("n", n, "kn", kn, "jn", jn, "S", 0.25, "T", 0.0025)
			for i, name := range []string{"ZA", "ZB", "ZM", "ZP", "ZQ", "ZR", "ZU", "ZV", "ZZ"} {
				e.Arrays[name] = fill(size, uint64(210+i), 0.1, 1)
			}
			return e
		},
		Run: func(n int, e *lang.Env) {
			kn, jn := int(e.Scalars["kn"]), int(e.Scalars["jn"])
			at := func(name string) []float64 { return e.Arrays[name] }
			za, zb := at("ZA"), at("ZB")
			zm, zp, zq, zr, zu, zv, zz := at("ZM"), at("ZP"), at("ZQ"), at("ZR"), at("ZU"), at("ZV"), at("ZZ")
			s, tt := e.Scalars["S"], e.Scalars["T"]
			idx := func(k, j int) int { return k*jn + j }
			for k := 1; k < kn-1; k++ {
				for j := 1; j < jn-1; j++ {
					za[idx(k, j)] = (zp[idx(k+1, j-1)] + zq[idx(k+1, j-1)] - zp[idx(k, j-1)] - zq[idx(k, j-1)]) *
						(zr[idx(k, j)] + zr[idx(k, j-1)]) / (zm[idx(k, j-1)] + zm[idx(k+1, j-1)])
					zb[idx(k, j)] = (zp[idx(k, j-1)] + zq[idx(k, j-1)] - zp[idx(k, j)] - zq[idx(k, j)]) *
						(zr[idx(k, j)] + zr[idx(k-1, j)]) / (zm[idx(k, j)] + zm[idx(k, j-1)])
				}
			}
			for k := 1; k < kn-1; k++ {
				for j := 1; j < jn-1; j++ {
					zu[idx(k, j)] += s * (za[idx(k, j)]*(zz[idx(k, j)]-zz[idx(k, j+1)]) -
						za[idx(k, j-1)]*(zz[idx(k, j)]-zz[idx(k, j-1)]) -
						zb[idx(k, j)]*(zz[idx(k, j)]-zz[idx(k-1, j)]) +
						zb[idx(k+1, j)]*(zz[idx(k, j)]-zz[idx(k+1, j)]))
					zv[idx(k, j)] += s * (za[idx(k, j)]*(zr[idx(k, j)]-zr[idx(k, j+1)]) -
						za[idx(k, j-1)]*(zr[idx(k, j)]-zr[idx(k, j-1)]) -
						zb[idx(k, j)]*(zr[idx(k, j)]-zr[idx(k-1, j)]) +
						zb[idx(k+1, j)]*(zr[idx(k, j)]-zr[idx(k+1, j)]))
				}
			}
			for k := 1; k < kn-1; k++ {
				for j := 1; j < jn-1; j++ {
					zr[idx(k, j)] += tt * zu[idx(k, j)]
					zz[idx(k, j)] += tt * zv[idx(k, j)]
				}
			}
		},
	}
}

// fullKernel21 is the true matrix product px += vy·cx over 25×n×25.
func fullKernel21() FullKernel {
	return FullKernel{
		ID: 21, Name: "matrix product full",
		Out: "PX",
		Setup: func(n int) *lang.Env {
			const d = 25
			return env("n", n, "d", d,
				"PX", make([]float64, d*d),
				"VY", fill(d*n, 220, 0, 1),
				"CX", fill(n*d, 221, 0, 1))
		},
		Run: func(n int, e *lang.Env) {
			d := int(e.Scalars["d"])
			px, vy, cx := e.Arrays["PX"], e.Arrays["VY"], e.Arrays["CX"]
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					acc := px[i*d+j]
					for k := 0; k < n; k++ {
						acc += vy[i*n+k] * cx[k*d+j]
					}
					px[i*d+j] = acc
				}
			}
		},
	}
}
