package livermore

import (
	"math"

	"indexedrec/internal/lang"
)

// All returns the 24 Livermore kernels. DSL encodings model the kernel's
// core recurrence loop; where the original uses features outside the loop
// language (conditionals, exp, argmin, intra-iteration chains) DSL is empty
// and only the native implementation exists. Multidimensional kernels are
// encoded from the flattened-loop perspective the paper takes (a loop nest
// is one sequential iteration stream), which is what makes reductions into
// indexed recurrences.
func All() []Kernel {
	return []Kernel{
		kernel1(), kernel2(), kernel3(), kernel4(), kernel5(), kernel6(),
		kernel7(), kernel8(), kernel9(), kernel10(), kernel11(), kernel12(),
		kernel13(), kernel14(), kernel15(), kernel16(), kernel17(), kernel18(),
		kernel19(), kernel20(), kernel21(), kernel22(), kernel23(), kernel24(),
	}
}

// ByID returns kernel id (1-based), or nil.
func ByID(id int) *Kernel {
	for _, k := range All() {
		if k.ID == id {
			k := k
			return &k
		}
	}
	return nil
}

func kernel1() Kernel {
	return Kernel{
		ID: 1, Name: "hydro fragment",
		Curated: Class{Bucket: lang.BucketNone, Note: "pure map"},
		DSL:     "for k = 0 to n do X[k] := Q + Y[k]*(R*Z[k+10] + T*Z[k+11])",
		Out:     "X",
		Setup: func(n int) *lang.Env {
			return env("n", n-1, "Q", 0.5, "R", 0.25, "T", 0.125,
				"X", make([]float64, n), "Y", fill(n, 1, 0, 1), "Z", fill(n+12, 2, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			x, y, z := e.Arrays["X"], e.Arrays["Y"], e.Arrays["Z"]
			q, r, t := e.Scalars["Q"], e.Scalars["R"], e.Scalars["T"]
			for k := 0; k < n; k++ {
				x[k] = q + y[k]*(r*z[k+10]+t*z[k+11])
			}
		},
	}
}

func kernel2() Kernel {
	// ICCG excerpt: one cascade level x[n+k] = x[2k] - v[2k]x[2k-1] -
	// v[2k+1]x[2k+1]. Level-wise the reads and writes are disjoint, but
	// proving that requires index analysis, which the syntactic IR
	// framework deliberately avoids — so the classifier reports unknown
	// while the curated bucket is "no recurrence".
	return Kernel{
		ID: 2, Name: "ICCG (incomplete Cholesky conjugate gradient)",
		Curated: Class{Bucket: lang.BucketNone,
			Note: "level-wise map; disjointness needs index analysis, so the syntactic classifier reports unknown"},
		DSL: "for k = 1 to n do X[p+k] := X[2*k] - V[2*k]*X[2*k-1] - V[2*k+1]*X[2*k+1]",
		Out: "X",
		Setup: func(n int) *lang.Env {
			return env("n", n/2-1, "p", n,
				"X", fill(2*n+2, 3, 0.1, 1), "V", fill(2*n+2, 4, 0, 0.5))
		},
		Native: func(n int, e *lang.Env) {
			x, v := e.Arrays["X"], e.Arrays["V"]
			p := int(e.Scalars["p"])
			for k := 1; k <= n/2-1; k++ {
				x[p+k] = x[2*k] - v[2*k]*x[2*k-1] - v[2*k+1]*x[2*k+1]
			}
		},
	}
}

func kernel3() Kernel {
	// Inner product q += z[k]*x[k], as the array recurrence Q[k] =
	// Q[k-1] + Z[k]*X[k].
	return Kernel{
		ID: 3, Name: "inner product",
		Curated: Class{Bucket: lang.BucketLinear, Form: "linear-IR",
			Note: "scalar reduction = first-order linear recurrence"},
		DSL: "for k = 1 to n do Q[k] := Q[k-1] + Z[k]*X[k]",
		Out: "Q",
		Setup: func(n int) *lang.Env {
			return env("n", n,
				"Q", make([]float64, n+1), "Z", fill(n+1, 5, -1, 1), "X", fill(n+1, 6, -1, 1))
		},
		Native: func(n int, e *lang.Env) {
			q, z, x := e.Arrays["Q"], e.Arrays["Z"], e.Arrays["X"]
			for k := 1; k <= n; k++ {
				q[k] = q[k-1] + z[k]*x[k]
			}
		},
	}
}

func kernel4() Kernel {
	// Banded linear equations: the inner elimination loop accumulates into
	// a running value indexed by the band, flattened: indexed recurrence
	// (repeated writes to the same accumulator cell through a computed
	// index).
	return Kernel{
		ID: 4, Name: "banded linear equations",
		Curated: Class{Bucket: lang.BucketIndexed, Form: "linear-IR-extended",
			Note: "accumulator written through computed index (flattened nest)"},
		DSL: "for j = 0 to n do T[K[j]] := T[K[j]] - XZ[j]*Y[j]",
		Out: "T",
		Setup: func(n int) *lang.Env {
			bands := n/8 + 1
			k := make([]float64, n+1)
			for j := range k {
				k[j] = float64(j % bands)
			}
			return env("n", n, "T", fill(bands, 7, 1, 2), "K", k,
				"XZ", fill(n+1, 8, 0, 0.1), "Y", fill(n+1, 9, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			t, k, xz, y := e.Arrays["T"], e.Arrays["K"], e.Arrays["XZ"], e.Arrays["Y"]
			for j := 0; j <= n; j++ {
				t[int(k[j])] -= xz[j] * y[j]
			}
		},
	}
}

func kernel5() Kernel {
	// Tri-diagonal elimination (below diagonal): x[i] = z[i]*(y[i]-x[i-1])
	// — the classic first-order linear recurrence (paper-legible: linear).
	return Kernel{
		ID: 5, Name: "tri-diagonal elimination",
		Curated: Class{Bucket: lang.BucketLinear, Form: "linear-IR"},
		DSL:     "for i = 1 to n do X[i] := Z[i]*(Y[i] - X[i-1])",
		Out:     "X",
		Setup: func(n int) *lang.Env {
			return env("n", n,
				"X", fill(n+1, 10, 0, 1), "Y", fill(n+1, 11, 0, 1), "Z", fill(n+1, 12, 0.2, 0.8))
		},
		Native: func(n int, e *lang.Env) {
			x, y, z := e.Arrays["X"], e.Arrays["Y"], e.Arrays["Z"]
			for i := 1; i <= n; i++ {
				x[i] = z[i] * (y[i] - x[i-1])
			}
		},
	}
}

func kernel6() Kernel {
	// General linear recurrence equations: w[i] += b[k]*w[i-k-1]; the
	// flattened nest writes each w[i] many times (non-distinct g) and
	// reads arbitrary earlier cells: an indexed recurrence.
	return Kernel{
		ID: 6, Name: "general linear recurrence equations",
		Curated: Class{Bucket: lang.BucketIndexed, Form: "linear-IR-extended",
			Note: "inner loop re-writes w[i] (non-distinct g in flattened form)"},
		DSL: "for k = 0 to m do W[i] := W[i] + B[k]*W[i-k-1]",
		Out: "W",
		Setup: func(n int) *lang.Env {
			i := n / 2
			return env("m", i-1, "i", i,
				"W", fill(n+1, 13, 0.1, 0.9), "B", fill(n+1, 14, 0, 2.0/float64(n)))
		},
		Native: func(n int, e *lang.Env) {
			w, b := e.Arrays["W"], e.Arrays["B"]
			i := int(e.Scalars["i"])
			for k := 0; k <= i-1; k++ {
				w[i] += b[k] * w[i-k-1]
			}
		},
	}
}

func kernel7() Kernel {
	return Kernel{
		ID: 7, Name: "equation of state fragment",
		Curated: Class{Bucket: lang.BucketNone, Note: "pure map (paper-legible: no recurrence)"},
		DSL: "for k = 0 to n do X[k] := U[k] + R*(Z[k] + R*Y[k]) + " +
			"T*(U[k+3] + R*(U[k+2] + R*U[k+1]) + T*(U[k+6] + Q*(U[k+5] + Q*U[k+4])))",
		Out: "X",
		Setup: func(n int) *lang.Env {
			return env("n", n-1, "Q", 0.5, "R", 0.25, "T", 0.125,
				"X", make([]float64, n), "Y", fill(n, 15, 0, 1),
				"Z", fill(n, 16, 0, 1), "U", fill(n+7, 17, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			x, y, z, u := e.Arrays["X"], e.Arrays["Y"], e.Arrays["Z"], e.Arrays["U"]
			q, r, t := e.Scalars["Q"], e.Scalars["R"], e.Scalars["T"]
			for k := 0; k < n; k++ {
				x[k] = u[k] + r*(z[k]+r*y[k]) +
					t*(u[k+3]+r*(u[k+2]+r*u[k+1])+t*(u[k+6]+q*(u[k+5]+q*u[k+4])))
			}
		},
	}
}

func kernel8() Kernel {
	// ADI integration: writes one time plane reading another; modeled with
	// separate arrays per plane (paper-legible: no recurrence).
	return Kernel{
		ID: 8, Name: "ADI integration",
		Curated: Class{Bucket: lang.BucketNone, Note: "plane-to-plane map"},
		DSL:     "for k = 1 to n do DU[k] := U2[k+1] - U2[k-1] + A[k]*(U1[k+1] - 2*U1[k] + U1[k-1])",
		Out:     "DU",
		Setup: func(n int) *lang.Env {
			return env("n", n,
				"DU", make([]float64, n+2), "U1", fill(n+2, 18, 0, 1),
				"U2", fill(n+2, 19, 0, 1), "A", fill(n+2, 20, 0, 0.5))
		},
		Native: func(n int, e *lang.Env) {
			du, u1, u2, a := e.Arrays["DU"], e.Arrays["U1"], e.Arrays["U2"], e.Arrays["A"]
			for k := 1; k <= n; k++ {
				du[k] = u2[k+1] - u2[k-1] + a[k]*(u1[k+1]-2*u1[k]+u1[k-1])
			}
		},
	}
}

func kernel9() Kernel {
	return Kernel{
		ID: 9, Name: "integrate predictors",
		Curated: Class{Bucket: lang.BucketNone, Note: "map over prediction columns"},
		DSL: "for i = 0 to n do P0[i] := P12[i] + C1*(P11[i] + P10[i]) + " +
			"C2*(P9[i] + P8[i] + P7[i]) + C3*(P6[i] + P5[i])",
		Out: "P0",
		Setup: func(n int) *lang.Env {
			e := env("n", n-1, "C1", 0.1, "C2", 0.01, "C3", 0.001, "P0", make([]float64, n))
			for idx, name := range []string{"P5", "P6", "P7", "P8", "P9", "P10", "P11", "P12"} {
				e.Arrays[name] = fill(n, uint64(21+idx), 0, 1)
			}
			return e
		},
		Native: func(n int, e *lang.Env) {
			a := e.Arrays
			c1, c2, c3 := e.Scalars["C1"], e.Scalars["C2"], e.Scalars["C3"]
			for i := 0; i < n; i++ {
				a["P0"][i] = a["P12"][i] + c1*(a["P11"][i]+a["P10"][i]) +
					c2*(a["P9"][i]+a["P8"][i]+a["P7"][i]) + c3*(a["P6"][i]+a["P5"][i])
			}
		},
	}
}

func kernel10() Kernel {
	// Difference predictors: a chain of column updates within each
	// iteration, independent across iterations. Intra-iteration chains are
	// outside the single-assignment DSL; native only.
	return Kernel{
		ID: 10, Name: "difference predictors",
		Curated: Class{Bucket: lang.BucketNone,
			Note: "per-iteration column chain, no cross-iteration dependence; outside the DSL"},
		Out: "PX4",
		Setup: func(n int) *lang.Env {
			return env("n", n,
				"CX", fill(n, 30, 0, 1),
				"PX4", fill(n, 31, 0, 1), "PX5", fill(n, 32, 0, 1),
				"PX6", fill(n, 33, 0, 1), "PX7", fill(n, 34, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			cx := e.Arrays["CX"]
			p4, p5, p6, p7 := e.Arrays["PX4"], e.Arrays["PX5"], e.Arrays["PX6"], e.Arrays["PX7"]
			for k := 0; k < n; k++ {
				ar := cx[k]
				br := ar - p4[k]
				p4[k] = ar
				cr := br - p5[k]
				p5[k] = br
				ar = cr - p6[k]
				p6[k] = cr
				p7[k] = ar
			}
		},
	}
}

func kernel11() Kernel {
	return Kernel{
		ID: 11, Name: "first sum (prefix sum)",
		Curated: Class{Bucket: lang.BucketLinear, Form: "linear-IR"},
		DSL:     "for k = 1 to n do X[k] := X[k-1] + Y[k]",
		Out:     "X",
		Setup: func(n int) *lang.Env {
			return env("n", n, "X", make([]float64, n+1), "Y", fill(n+1, 35, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			x, y := e.Arrays["X"], e.Arrays["Y"]
			for k := 1; k <= n; k++ {
				x[k] = x[k-1] + y[k]
			}
		},
	}
}

func kernel12() Kernel {
	return Kernel{
		ID: 12, Name: "first difference",
		Curated: Class{Bucket: lang.BucketNone, Note: "pure map"},
		DSL:     "for k = 0 to n do X[k] := Y[k+1] - Y[k]",
		Out:     "X",
		Setup: func(n int) *lang.Env {
			return env("n", n-1, "X", make([]float64, n), "Y", fill(n+1, 36, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			x, y := e.Arrays["X"], e.Arrays["Y"]
			for k := 0; k < n; k++ {
				x[k] = y[k+1] - y[k]
			}
		},
	}
}

func kernel13() Kernel {
	// 2-D particle in cell: scatter-accumulate through an indirection
	// table — an indexed recurrence with non-distinct g.
	return Kernel{
		ID: 13, Name: "2-D particle in cell",
		Curated: Class{Bucket: lang.BucketIndexed, Form: "linear-IR-extended",
			Note: "scatter += through indirection (non-distinct g)"},
		DSL: "for ip = 0 to n do H[J[ip]] := H[J[ip]] + 1",
		Out: "H",
		Setup: func(n int) *lang.Env {
			return env("n", n-1, "H", make([]float64, n/4+2), "J", ints(n, 37, n/4+1))
		},
		Native: func(n int, e *lang.Env) {
			h, j := e.Arrays["H"], e.Arrays["J"]
			for ip := 0; ip < n; ip++ {
				h[int(j[ip])]++
			}
		},
	}
}

func kernel14() Kernel {
	// 1-D particle in cell: same scatter pattern with a charge deposit.
	return Kernel{
		ID: 14, Name: "1-D particle in cell",
		Curated: Class{Bucket: lang.BucketIndexed, Form: "linear-IR-extended",
			Note: "charge deposit += through indirection"},
		DSL: "for k = 0 to n do RH[IR[k]] := RH[IR[k]] + FR[k]",
		Out: "RH",
		Setup: func(n int) *lang.Env {
			return env("n", n-1, "RH", make([]float64, n/4+2),
				"IR", ints(n, 38, n/4+1), "FR", fill(n, 39, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			rh, ir, fr := e.Arrays["RH"], e.Arrays["IR"], e.Arrays["FR"]
			for k := 0; k < n; k++ {
				rh[int(ir[k])] += fr[k]
			}
		},
	}
}

func kernel15() Kernel {
	// Casual Fortran: conditional assignments, no loop-carried recurrence
	// on the written arrays. Outside the DSL (no conditionals).
	return Kernel{
		ID: 15, Name: "casual Fortran (2-D hydrodynamics setup)",
		Curated: Class{Bucket: lang.BucketNone,
			Note: "conditional map; conditionals are outside the DSL"},
		Out: "VS",
		Setup: func(n int) *lang.Env {
			return env("n", n, "VS", make([]float64, n),
				"VY", fill(n, 40, -0.5, 1), "VH", fill(n, 41, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			vs, vy, vh := e.Arrays["VS"], e.Arrays["VY"], e.Arrays["VH"]
			for k := 0; k < n; k++ {
				t := 0.0
				if vy[k] > 0 {
					t = vy[k] * vh[k]
				}
				if vh[k] > 0.5 {
					t += 1
				}
				vs[k] = t
			}
		},
	}
}

func kernel16() Kernel {
	// Monte Carlo search: a data-dependent search loop; no recurrence.
	return Kernel{
		ID: 16, Name: "Monte Carlo search loop",
		Curated: Class{Bucket: lang.BucketNone,
			Note: "search with data-dependent control flow; outside the DSL"},
		Out: "M",
		Setup: func(n int) *lang.Env {
			return env("n", n, "M", make([]float64, 1),
				"ZONE", fill(n, 42, 0, 1), "PLAN", fill(n, 43, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			zone, plan := e.Arrays["ZONE"], e.Arrays["PLAN"]
			m := 0
			for k := 0; k < n; k++ {
				if zone[k] < plan[k] {
					m = k
					break
				}
			}
			e.Arrays["M"][0] = float64(m)
		},
	}
}

func kernel17() Kernel {
	// Implicit conditional computation: a scalar recurrence whose update
	// depends on branches — the combining operation is not a fixed
	// associative op, so it is outside the IR framework.
	return Kernel{
		ID: 17, Name: "implicit conditional computation",
		Curated: Class{Bucket: lang.BucketUnknown,
			Note: "conditional recurrence: per-iteration op chosen by branch, not associative as a whole"},
		Out: "XNM",
		Setup: func(n int) *lang.Env {
			return env("n", n, "XNM", make([]float64, n+1),
				"VLR", fill(n+1, 44, 0.1, 1), "VLIN", fill(n+1, 45, 0.1, 1))
		},
		Native: func(n int, e *lang.Env) {
			xnm, vlr, vlin := e.Arrays["XNM"], e.Arrays["VLR"], e.Arrays["VLIN"]
			xnm[0] = 0.5
			for k := 1; k <= n; k++ {
				if vlr[k] > 0.5 {
					xnm[k] = xnm[k-1]*vlin[k] + 0.1
				} else {
					xnm[k] = xnm[k-1] + vlr[k]
				}
			}
		},
	}
}

func kernel18() Kernel {
	// 2-D explicit hydrodynamics: self-update from the cell's own initial
	// value plus other arrays; each cell written once (g is a shift), so
	// no genuine recurrence.
	return Kernel{
		ID: 18, Name: "2-D explicit hydrodynamics",
		Curated: Class{Bucket: lang.BucketNone,
			Note: "distinct self-updates reading other arrays only"},
		DSL: "for k = 1 to n do ZU[k] := ZU[k] + S*(ZA[k]*ZZ[k] - ZB[k]*ZR[k])",
		Out: "ZU",
		Setup: func(n int) *lang.Env {
			return env("n", n, "S", 0.25,
				"ZU", fill(n+1, 46, 0, 1), "ZA", fill(n+1, 47, 0, 1),
				"ZB", fill(n+1, 48, 0, 1), "ZZ", fill(n+1, 49, 0, 1), "ZR", fill(n+1, 50, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			zu, za, zb, zz, zr := e.Arrays["ZU"], e.Arrays["ZA"], e.Arrays["ZB"], e.Arrays["ZZ"], e.Arrays["ZR"]
			s := e.Scalars["S"]
			for k := 1; k <= n; k++ {
				zu[k] += s * (za[k]*zz[k] - zb[k]*zr[k])
			}
		},
	}
}

func kernel19() Kernel {
	// General linear recurrence equations (second form): the classic
	// backward/forward first-order chain.
	return Kernel{
		ID: 19, Name: "general linear recurrence (stb5 chain)",
		Curated: Class{Bucket: lang.BucketLinear, Form: "linear-IR"},
		DSL:     "for k = 1 to n do B5[k] := B5[k-1]*SA[k] + SB[k]",
		Out:     "B5",
		Setup: func(n int) *lang.Env {
			return env("n", n, "B5", fill(n+1, 51, 0, 1),
				"SA", fill(n+1, 52, 0.2, 0.9), "SB", fill(n+1, 53, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			b5, sa, sb := e.Arrays["B5"], e.Arrays["SA"], e.Arrays["SB"]
			for k := 1; k <= n; k++ {
				b5[k] = b5[k-1]*sa[k] + sb[k]
			}
		},
	}
}

func kernel20() Kernel {
	// Discrete ordinates transport: a rational (Möbius) first-order
	// recurrence xx[k+1] = (a·xx[k]+b)/(c·xx[k]+d).
	return Kernel{
		ID: 20, Name: "discrete ordinates transport",
		Curated: Class{Bucket: lang.BucketLinear, Form: "moebius-IR",
			Note: "rational recurrence — the paper's Lemma 2 case"},
		DSL: "for k = 1 to n do XX[k+1] := (A[k]*XX[k] + B[k]) / (C[k]*XX[k] + D[k])",
		Out: "XX",
		Setup: func(n int) *lang.Env {
			return env("n", n, "XX", onesArr(n+2),
				"A", fill(n+1, 54, 0.5, 1.5), "B", fill(n+1, 55, 0.1, 1),
				"C", fill(n+1, 56, 0.1, 0.5), "D", fill(n+1, 57, 0.8, 1.5))
		},
		Native: func(n int, e *lang.Env) {
			xx, a, b, c, d := e.Arrays["XX"], e.Arrays["A"], e.Arrays["B"], e.Arrays["C"], e.Arrays["D"]
			for k := 1; k <= n; k++ {
				xx[k+1] = (a[k]*xx[k] + b[k]) / (c[k]*xx[k] + d[k])
			}
		},
	}
}

func kernel21() Kernel {
	// Matrix product: in flattened form the accumulation cell px[i,j] is
	// written for every k — an indexed recurrence with non-distinct g.
	return Kernel{
		ID: 21, Name: "matrix product",
		Curated: Class{Bucket: lang.BucketIndexed, Form: "linear-IR-extended",
			Note: "accumulation cell re-written per k (flattened nest)"},
		DSL: "for k = 0 to n do PX[q] := PX[q] + VY[k]*CX[k]",
		Out: "PX",
		Setup: func(n int) *lang.Env {
			return env("n", n-1, "q", 3, "PX", make([]float64, 8),
				"VY", fill(n, 58, 0, 1), "CX", fill(n, 59, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			px, vy, cx := e.Arrays["PX"], e.Arrays["VY"], e.Arrays["CX"]
			q := int(e.Scalars["q"])
			for k := 0; k < n; k++ {
				px[q] += vy[k] * cx[k]
			}
		},
	}
}

func kernel22() Kernel {
	// Planckian distribution: needs exp — outside the DSL.
	return Kernel{
		ID: 22, Name: "Planckian distribution",
		Curated: Class{Bucket: lang.BucketNone, Note: "map with exp; outside the DSL"},
		Out:     "W",
		Setup: func(n int) *lang.Env {
			return env("n", n, "W", make([]float64, n),
				"U", fill(n, 60, 0.1, 2), "V", fill(n, 61, 0.5, 2), "X", fill(n, 62, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			w, u, v, x := e.Arrays["W"], e.Arrays["U"], e.Arrays["V"], e.Arrays["X"]
			for k := 0; k < n; k++ {
				y := u[k] / v[k]
				w[k] = x[k] / (math.Exp(y) - 1)
			}
		},
	}
}

func kernel23() Kernel {
	// 2-D implicit hydrodynamics — the paper's §3 worked example, in the
	// paper's own simplified form with the 2-D array flattened as
	// X[7(i-1)+j]:
	//   X[i,j] := X[i,j] + 0.75*(Y[i] + X[i-1,j]*Z[i,j])
	return Kernel{
		ID: 23, Name: "2-D implicit hydrodynamics (paper §3 example)",
		Curated: Class{Bucket: lang.BucketIndexed, Form: "linear-IR-extended",
			Note: "the paper's Möbius worked example"},
		DSL: "for i = 2 to n do X[7*(i-1)+j] := X[7*(i-1)+j] + 0.75d0*(Y[i] + X[7*(i-2)+j]*Z[7*(i-1)+j])",
		Out: "X",
		Setup: func(n int) *lang.Env {
			rows := n + 1
			return env("n", n, "j", 1,
				"X", fill(7*rows+8, 63, 0, 1), "Y", fill(n+1, 64, 0, 1),
				"Z", fill(7*rows+8, 65, 0, 1))
		},
		Native: func(n int, e *lang.Env) {
			x, y, z := e.Arrays["X"], e.Arrays["Y"], e.Arrays["Z"]
			j := int(e.Scalars["j"])
			for i := 2; i <= n; i++ {
				x[7*(i-1)+j] += 0.75 * (y[i] + x[7*(i-2)+j]*z[7*(i-1)+j])
			}
		},
	}
}

func kernel24() Kernel {
	// Location of first minimum: an argmin reduction; comparisons are
	// outside the DSL, and the combining operation is not one of the
	// framework's ops.
	return Kernel{
		ID: 24, Name: "location of first minimum",
		Curated: Class{Bucket: lang.BucketUnknown,
			Note: "argmin reduction; outside the IR operator algebra"},
		Out: "M",
		Setup: func(n int) *lang.Env {
			return env("n", n, "M", make([]float64, 1), "X", fill(n, 66, -1, 1))
		},
		Native: func(n int, e *lang.Env) {
			x := e.Arrays["X"]
			m := 0
			for k := 1; k < n; k++ {
				if x[k] < x[m] {
					m = k
				}
			}
			e.Arrays["M"][0] = float64(m)
		},
	}
}

func onesArr(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
