// Package livermore reproduces the paper's §1 evaluation substrate: the 24
// Livermore Loops (McMahon's Fortran kernels), each with
//
//   - a native Go implementation of the kernel's core loop (the sequential
//     reference),
//   - where the core loop fits the paper's loop language, a DSL encoding
//     that internal/lang classifies mechanically, and
//   - curated classification metadata (the paper's three-way bucket: no
//     recurrence / linear recurrence / indexed recurrence).
//
// The paper's in-text classification lost most digits to OCR ("loops
// ,7,8,,5,6, do not contain recurrences ... loops ,5,,9 contain linear
// recurrences ... all other loops (except for ,0,) contain indexed
// recurrences"); the classification experiment therefore re-derives the
// table from the DSL encodings and reports it next to the curated buckets,
// with the legible fragments (7, 8 no-recurrence; 5 linear; 23 indexed via
// the paper's own §3 worked example) asserted in tests.
//
// Kernel shapes follow the classic lloops reference; sizes are
// parameterized and initial data is deterministic, chosen to keep values
// finite. Kernel 23 follows the PAPER's simplified fragment (its §3 worked
// example) rather than the full original, since that is the artifact being
// reproduced.
package livermore

import (
	"math"

	"indexedrec/internal/lang"
)

// Class is a kernel's curated classification.
type Class struct {
	// Bucket is the paper-style three-way classification.
	Bucket lang.Bucket
	// Form names the recurrence form of the core loop when it fits the IR
	// framework ("" otherwise).
	Form string
	// Note explains kernels outside the framework.
	Note string
}

// Kernel is one Livermore loop.
type Kernel struct {
	ID   int
	Name string
	// Curated is the hand-derived classification (from kernel structure).
	Curated Class
	// DSL is the core recurrence loop in the paper's loop language; empty
	// when the kernel needs features the language lacks (conditionals,
	// exp, argmin).
	DSL string
	// Setup builds the environment (arrays + scalars) for both the DSL
	// interpreter and the native run, for problem size n.
	Setup func(n int) *lang.Env
	// Native runs the kernel's core loop natively on env (same semantics
	// as the DSL when DSL is non-empty). It mutates env.
	Native func(n int, env *lang.Env)
	// Out is the name of the kernel's primary output array in env.
	Out string
}

// deterministic data helpers -------------------------------------------------

// fill returns a deterministic pseudo-random slice in (lo, hi), seeded per
// kernel so runs are reproducible.
func fill(n int, seed uint64, lo, hi float64) []float64 {
	v := make([]float64, n)
	s := seed*2862933555777941757 + 3037000493
	for i := range v {
		s = s*2862933555777941757 + 3037000493
		u := float64(s>>11) / float64(1<<53)
		v[i] = lo + u*(hi-lo)
	}
	return v
}

func ints(n int, seed uint64, m int) []float64 {
	v := make([]float64, n)
	s := seed*6364136223846793005 + 1442695040888963407
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(int(s>>33) % m)
		if v[i] < 0 {
			v[i] += float64(m)
		}
	}
	return v
}

// perm returns a deterministic permutation of 0..n-1 as float64s.
func perm(n int, seed uint64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	s := seed
	for i := n - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int(s>>33) % (i + 1)
		v[i], v[j] = v[j], v[i]
	}
	return v
}

func env(pairs ...any) *lang.Env {
	e := lang.NewEnv()
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		switch v := pairs[i+1].(type) {
		case []float64:
			e.Arrays[name] = v
		case float64:
			e.Scalars[name] = v
		case int:
			e.Scalars[name] = float64(v)
		}
	}
	return e
}

// checksum folds an array into a single comparable value; math.Abs guards
// against sign cancellation hiding differences.
func checksum(v []float64) float64 {
	s := 0.0
	for i, x := range v {
		s += math.Abs(x) * float64(i%7+1)
	}
	return s
}
