package livermore

import (
	"fmt"

	"indexedrec/internal/lang"
)

// Row is one line of the classification table (the paper's §1 study).
type Row struct {
	ID   int
	Name string
	// DSLForm is the mechanical classifier's form for the DSL encoding,
	// or "n/a" when the kernel has no DSL encoding.
	DSLForm string
	// DSLBucket is the mechanical three-way bucket (BucketUnknown when no
	// DSL encoding exists).
	DSLBucket lang.Bucket
	// Curated is the hand-derived classification.
	Curated Class
	// Agree reports whether the mechanical bucket matches the curated one
	// (meaningful only when a DSL encoding exists).
	Agree bool
}

// ClassificationTable runs the internal/lang classifier over every kernel's
// DSL encoding and pairs the result with the curated classification.
func ClassificationTable() ([]Row, error) {
	var rows []Row
	for _, k := range All() {
		row := Row{ID: k.ID, Name: k.Name, Curated: k.Curated, DSLForm: "n/a"}
		if k.DSL != "" {
			loop, err := lang.Parse(k.DSL)
			if err != nil {
				return nil, fmt.Errorf("kernel %d: %w", k.ID, err)
			}
			an := lang.Analyze(loop)
			row.DSLForm = an.Form.String()
			row.DSLBucket = an.Bucket
			row.Agree = an.Bucket == k.Curated.Bucket
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BucketCounts tallies curated buckets — the paper's headline numbers.
func BucketCounts() map[lang.Bucket]int {
	counts := make(map[lang.Bucket]int)
	for _, k := range All() {
		counts[k.Curated.Bucket]++
	}
	return counts
}
