package indexedrec

// Cross-module integration and property tests: random IR systems flow
// through every solver and oracle, and all answers must coincide. These are
// the repository's end-to-end invariants; per-module tests live next to
// their packages.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/lang"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/pram"
	"indexedrec/internal/simparc"
	"indexedrec/internal/trace"
	"indexedrec/internal/workload"
)

// ordinarySystem is a quick.Generator producing random distinct-g ordinary
// systems together with initial values.
type ordinarySystem struct {
	Sys  *core.System
	Init []int64
}

func (ordinarySystem) Generate(rng *rand.Rand, size int) reflect.Value {
	m := 1 + rng.Intn(size+1)
	s := workload.RandomOrdinary(rng, m, rng.Intn(m+1))
	return reflect.ValueOf(ordinarySystem{
		Sys:  s,
		Init: workload.InitInt64(rng, m, 1_000_003),
	})
}

// generalSystem is a quick.Generator for arbitrary GIR systems.
type generalSystem struct {
	Sys  *core.System
	Init []int64
}

func (generalSystem) Generate(rng *rand.Rand, size int) reflect.Value {
	m := 2 + rng.Intn(size+1)
	n := rng.Intn(size + 1)
	if n > 24 {
		n = 24 // keep exponent growth in check for quick's 100 iterations
	}
	s := workload.RandomGIR(rng, m, n)
	return reflect.ValueOf(generalSystem{
		Sys:  s,
		Init: workload.InitInt64(rng, m, 1_000_003),
	})
}

func TestPropertyOrdinarySolversAgree(t *testing.T) {
	op := core.MulMod{M: 1_000_003}
	f := func(in ordinarySystem) bool {
		want := core.RunSequential[int64](in.Sys, op, in.Init)
		res, err := ordinary.Solve[int64](in.Sys, op, in.Init, ordinary.Options{Procs: 4})
		if err != nil {
			return false
		}
		for x := range want {
			if res.Values[x] != want[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, MaxCountScale: 0}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOrdinaryViaEverySubstrate(t *testing.T) {
	// One random instance pushed through every execution substrate in the
	// repository: native goroutines, the PRAM cost model, and the SimParC
	// assembly program — plus the symbolic trace oracle.
	op := core.MulMod{M: 1_000_003}
	opx := func(a, b int64) int64 { return op.Combine(a, b) }
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(60)
		s := workload.RandomOrdinary(rng, m, rng.Intn(m))
		init := workload.InitInt64(rng, m, op.M)
		want := core.RunSequential[int64](s, op, init)

		native, err := ordinary.Solve[int64](s, op, init, ordinary.Options{Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		cost, err := pram.RunParallelOIR(s, pram.OpMulMod(op.M), init, 4)
		if err != nil {
			t.Fatal(err)
		}
		asm, err := simparc.RunParallelOIR(s, opx, init, 4, 1<<26)
		if err != nil {
			t.Fatal(err)
		}
		trs, err := trace.Ordinary(s)
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if native.Values[x] != want[x] {
				t.Fatalf("trial %d native cell %d", trial, x)
			}
			if cost.Values[x] != want[x] {
				t.Fatalf("trial %d pram cell %d", trial, x)
			}
			if asm.Values[x] != want[x] {
				t.Fatalf("trial %d simparc cell %d", trial, x)
			}
			if got := trace.EvalOrdinary[int64](trs[x], op, init); got != want[x] {
				t.Fatalf("trial %d trace-oracle cell %d", trial, x)
			}
		}
	}
}

func TestPropertyGIRSolversAgree(t *testing.T) {
	op := core.MulMod{M: 1_000_003}
	f := func(in generalSystem) bool {
		want := core.RunSequential[int64](in.Sys, op, in.Init)
		for _, eng := range []gir.Engine{gir.EngineSquaring, gir.EngineDP, gir.EngineMatrix} {
			res, err := gir.Solve[int64](in.Sys, op, in.Init, gir.Options{Engine: eng})
			if err != nil {
				return false
			}
			for x := range want {
				if res.Values[x] != want[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOrdinaryIsSpecialCaseOfGIR(t *testing.T) {
	// For commutative ops, the general solver on an ordinary system (H=G)
	// must match the specialized pointer-jumping solver.
	op := core.AddMod{M: 1 << 31}
	f := func(in ordinarySystem) bool {
		a, err := ordinary.Solve[int64](in.Sys, op, in.Init, ordinary.Options{})
		if err != nil {
			return false
		}
		b, err := gir.Solve[int64](in.Sys, op, in.Init, gir.Options{})
		if err != nil {
			return false
		}
		for x := range a.Values {
			if a.Values[x] != b.Values[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDSLRoundTrip(t *testing.T) {
	// A DSL loop equivalent to a generated linear system must execute to
	// the same values through the compiled parallel path as through the
	// sequential interpreter.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		m := 3 + rng.Intn(30)
		env := lang.NewEnv()
		env.Scalars["n"] = float64(m - 1)
		x := make([]float64, m)
		a := make([]float64, m)
		b := make([]float64, m)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
			a[i] = rng.Float64() - 0.5
			b[i] = rng.Float64() - 0.5
		}
		env.Arrays["X"], env.Arrays["A"], env.Arrays["B"] = x, a, b
		loop, err := lang.Parse("for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]")
		if err != nil {
			t.Fatal(err)
		}
		seq := env.Clone()
		if err := lang.Run(loop, seq); err != nil {
			t.Fatal(err)
		}
		par := env.Clone()
		if err := lang.Compile(loop).Execute(par, 2); err != nil {
			t.Fatal(err)
		}
		for i := range seq.Arrays["X"] {
			d := seq.Arrays["X"][i] - par.Arrays["X"][i]
			if d < -1e-9 || d > 1e-9 {
				t.Fatalf("trial %d cell %d: %v vs %v", trial, i, par.Arrays["X"][i], seq.Arrays["X"][i])
			}
		}
	}
}

func TestPropertyMoebiusRootsConsistent(t *testing.T) {
	// The Möbius solver's answer must equal applying the Lemma-2 composed
	// map manually along each chain — checked indirectly by comparing to
	// the exact rational twin on integer-valued instances.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(12)
		perm := rng.Perm(m)
		n := rng.Intn(m)
		g := make([]int, n)
		f := make([]int, n)
		af := make([]float64, n)
		bf := make([]float64, n)
		for i := 0; i < n; i++ {
			g[i], f[i] = perm[i], rng.Intn(m)
			af[i] = float64(rng.Intn(5) - 2)
			bf[i] = float64(rng.Intn(5) - 2)
		}
		x0 := make([]float64, m)
		for i := range x0 {
			x0[i] = float64(rng.Intn(7) - 3)
		}
		ms := moebius.NewLinear(m, g, f, af, bf)
		got, err := ms.Solve(x0, ordinary.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ms.RunSequential(x0)
		for i := range want {
			// Integer-valued data: results must be exactly equal (every
			// product of small integer matrices is exact in float64).
			if got[i] != want[i] {
				t.Fatalf("trial %d cell %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}
