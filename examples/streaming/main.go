// Streaming: an exponential-moving-average tick feed through a streaming
// session — the incremental-solve subsystem end to end.
//
//	go run ./examples/streaming
//
// An EMA over a price feed is the linear indexed recurrence
//
//	E[i] = α·tick[i] + (1-α)·E[i-1]
//
// i.e. X[g(i)] := a·X[f(i)] + b with a = 1-α and b = α·tick[i] — exactly
// the Möbius/linear family. A one-shot solve would need the whole feed up
// front; ticks do not work that way. So the example opens a session on the
// first batch and streams the rest through Append as the "market" produces
// them: each append folds k new ticks into the server-held resume state in
// O(k) and returns the updated EMA cells, while a cold re-solve of the
// concatenated system would pay O(n log n) per batch (EXPERIMENTS.md E19
// measures the gap). At the end the streamed state is compared bit-for-bit
// against the sequential fold of the full feed — the session contract.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
)

func main() {
	// An in-process irserved on a loopback port, as in examples/service;
	// cmd/irserved serves the same /v1/session API with flags.
	s := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		_ = hs.Close()
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("irserved listening on %s\n\n", base)

	const (
		alpha   = 0.125 // EMA smoothing factor
		batch   = 16    // ticks per append (one "market data packet")
		batches = 64    // appends streamed after the opening batch
		m       = 1 + batch*(batches+1)
	)
	rng := rand.New(rand.NewSource(42))
	price := 100.0
	tick := func() float64 {
		price += rng.NormFloat64() // a random walk
		return price
	}

	// Cell 0 seeds the EMA; cell i holds E[i] once iteration i lands. Each
	// iteration reads the previous EMA cell, so g is globally distinct —
	// the chain shape sessions are built for.
	mkBatch := func(start int) (g, f []int, a, b []float64) {
		g, f = make([]int, batch), make([]int, batch)
		a, b = make([]float64, batch), make([]float64, batch)
		for i := range g {
			g[i] = start + i
			f[i] = start + i - 1
			a[i] = 1 - alpha
			b[i] = alpha * tick()
		}
		return
	}

	c := client.New(base)
	ctx := context.Background()

	g, f, a, b := mkBatch(1)
	allA, allB := append([]float64(nil), a...), append([]float64(nil), b...)
	x0 := make([]float64, m)
	x0[0] = tick() // the seed EMA: the first observed price
	open, err := c.OpenSession(ctx, server.SessionOpenRequest{
		Family: "linear",
		M:      m, G: g, F: f, A: a, B: b, X0: x0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s open: family=%s n=%d\n", open.ID[:8], open.Family, open.N)

	var last float64
	for k := 0; k < batches; k++ {
		g, f, a, b := mkBatch(1 + batch*(k+1))
		allA, allB = append(allA, a...), append(allB, b...)
		res, err := c.Append(ctx, open.ID, server.SessionAppendRequest{
			G: g, F: f, A: a, B: b,
		})
		if err != nil {
			log.Fatal(err)
		}
		last = res.Values[len(res.Values)-1]
		if (k+1)%16 == 0 {
			fmt.Printf("  after %4d ticks: EMA = %.4f (append #%d)\n",
				res.N, last, res.Appends)
		}
	}

	// The contract: the streamed state is the sequential fold of the
	// concatenated feed, bit for bit.
	st, err := c.GetSession(ctx, open.ID)
	if err != nil {
		log.Fatal(err)
	}
	ema := x0[0]
	for i := range allA {
		ema = allA[i]*ema + allB[i]
	}
	if got := st.Values[st.N]; math.Float64bits(got) != math.Float64bits(ema) {
		log.Fatalf("streamed EMA %v != sequential fold %v", got, ema)
	}
	fmt.Printf("\nfinal EMA after %d ticks: %.4f — bit-identical to the sequential fold\n",
		st.N, last)

	if err := c.CloseSession(ctx, open.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session closed")
}
