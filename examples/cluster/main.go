// Cluster: the paper's §3 worked example — Livermore loop 23 (2-D implicit
// hydrodynamics) — solved through the ircluster distributed layer. Each
// column's extended linear indexed recurrence is shipped to a coordinator,
// which shards the Möbius cell domain across irserved workers and merges
// the slices bit-identically to the local plan solve.
//
// By default the example is self-contained: it starts two in-process
// irserved workers plus a coordinator, solves all six columns, then kills
// one worker and solves again to show retries/re-scatter keeping answers
// identical. Point it at a real fleet instead with -coordinator:
//
//	go run ./examples/cluster
//	go run ./examples/cluster -coordinator http://127.0.0.1:8070
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strings"
	"time"

	"indexedrec/internal/cluster"
	"indexedrec/internal/livermore"
	"indexedrec/internal/moebius"
	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
	"indexedrec/ir"
)

func main() {
	coord := flag.String("coordinator", "", "coordinator base URL (empty = start an in-process fleet)")
	rows := flag.Int("rows", 2048, "loop 23 problem size (rows per column)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	base := *coord
	var workerSrvs []*http.Server
	var co *cluster.Coordinator
	if base == "" {
		// Self-contained fleet: two irserved workers and a coordinator, all
		// in this process, on loopback ports.
		var addrs []string
		for i := 0; i < 2; i++ {
			s := server.New(server.Config{})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			hs := &http.Server{Handler: s.Handler()}
			go func() { _ = hs.Serve(l) }()
			workerSrvs = append(workerSrvs, hs)
			addrs = append(addrs, l.Addr().String())
		}
		co = cluster.New(cluster.Config{Workers: addrs, ProbeInterval: -1})
		defer co.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		front := &http.Server{Handler: co.Handler()}
		go func() { _ = front.Serve(l) }()
		defer front.Close()
		base = "http://" + l.Addr().String()
		fmt.Printf("in-process fleet: workers %s, coordinator %s\n\n", strings.Join(addrs, ", "), base)
	}
	c := client.NewPooled(base, time.Minute)
	if err := c.Healthz(ctx); err != nil {
		log.Fatalf("coordinator %s unreachable: %v", base, err)
	}

	k := livermore.ByID(23)
	fmt.Println("Livermore loop 23 core (as in the paper, column j fixed):")
	fmt.Println("   ", k.DSL)
	fmt.Println()

	first := make(map[int][]float64)
	solveAll := func(pass string) {
		var worst float64
		for j := 1; j <= 6; j++ {
			got := solveColumn(ctx, c, k, *rows, j)
			if prev, ok := first[j]; ok {
				for i := range got {
					if got[i] != prev[i] {
						log.Fatalf("column %d cell %d changed across passes: %v != %v", j, i, got[i], prev[i])
					}
				}
			} else {
				first[j] = got
			}
			// Cross-check against the sequential kernel (regrouping the
			// Möbius composition only costs rounding).
			seq := k.Setup(*rows)
			seq.Scalars["j"] = float64(j)
			k.Native(*rows, seq)
			for i, want := range seq.Arrays["X"] {
				rel := math.Abs(got[i]-want) / math.Max(1, math.Abs(want))
				if rel > worst {
					worst = rel
				}
			}
		}
		fmt.Printf("%s: 6 columns × %d rows solved distributed; max deviation vs sequential: %.3g\n",
			pass, *rows, worst)
		if worst > 1e-9 {
			log.Fatal("deviation too large — distribution should only regroup, never change math")
		}
	}

	solveAll("pass 1 (full fleet)")

	if *coord == "" {
		// Chaos act: kill one worker and solve again. The coordinator has no
		// probe running, so it still believes the worker is up — the next
		// scatter fails over shard by shard (retries, then re-scatter), and
		// every value must come back unchanged.
		_ = workerSrvs[0].Close()
		solveAll("pass 2 (one worker killed)")
	} else {
		solveAll("pass 2 (replay)")
	}

	if metrics, err := c.Metrics(ctx); err == nil {
		fmt.Println("\ncoordinator counters:")
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, "ircluster_shards_total") ||
				strings.HasPrefix(line, "ircluster_retries_total") ||
				strings.HasPrefix(line, "ircluster_hedges_total") ||
				strings.HasPrefix(line, "ircluster_local_fallbacks_total") {
				fmt.Println("   ", line)
			}
		}
	}
	fmt.Println("\nOK — all passes bit-identical, within rounding of the sequential kernel.")
}

// solveColumn ships column j's recurrence to the coordinator as an
// extended-form linear solve, checks it bit-matches the local plan path,
// and returns the distributed values.
func solveColumn(ctx context.Context, c *client.Client, k *livermore.Kernel, rows, j int) []float64 {
	e := k.Setup(rows)
	x, y, z := e.Arrays["X"], e.Arrays["Y"], e.Arrays["Z"]
	m := len(x)
	var g, f []int
	var a, b []float64
	for i := 2; i <= rows; i++ {
		gi, fi := 7*(i-1)+j, 7*(i-2)+j
		g = append(g, gi)
		f = append(f, fi)
		a = append(a, 0.75*z[gi]) // X[g] := X[g] + a·X[f] + b
		b = append(b, 0.75*y[i])
	}

	resp, err := c.SolveLinear(ctx, server.LinearRequest{
		M: m, G: g, F: f, A: a, B: b, X0: x, Extended: true,
	})
	if err != nil {
		log.Fatalf("column %d: distributed solve: %v", j, err)
	}

	// Local baseline: the exact plan path the coordinator shards.
	ms := moebius.NewExtended(m, g, f, a, b, x)
	p, err := ir.CompileMoebiusCtx(ctx, m, ms.G, ms.F)
	if err != nil {
		log.Fatalf("column %d: compile: %v", j, err)
	}
	want, err := ir.SolveMoebiusPlanCtx(ctx, p, ms.A, ms.B, ms.C, ms.D, x, ir.SolveOptions{})
	if err != nil {
		log.Fatalf("column %d: local solve: %v", j, err)
	}
	for i := range want {
		if resp.Values[i] != want[i] {
			log.Fatalf("column %d cell %d: distributed %v != local %v", j, i, resp.Values[i], want[i])
		}
	}
	return resp.Values
}
