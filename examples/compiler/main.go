// Compiler: the paper's motivating scenario end to end — feed sequential
// loops to the front-end, let it classify the recurrence form WITHOUT
// data-dependence analysis, and execute each with the matching parallel
// algorithm, checking against the sequential interpreter.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"
	"math"

	"indexedrec/internal/lang"
)

type demo struct {
	title string
	src   string
	setup func() *lang.Env
}

func main() {
	const n = 1000
	demos := []demo{
		{
			title: "prefix sums (ordinary IR, the classic)",
			src:   "for i = 1 to n do X[i] := X[i-1] + X[i]",
			setup: func() *lang.Env { return envWith(n+1, nil) },
		},
		{
			title: "indirect ordinary IR (paper §2: arbitrary g, f)",
			src:   "for i = 1 to n do X[G[i]] := X[F[i]] * X[G[i]]",
			setup: func() *lang.Env {
				e := envWith(2*n+2, nil)
				g := make([]float64, n+1)
				f := make([]float64, n+1)
				for i := 0; i <= n; i++ {
					g[i] = float64(2*i + 1) // odd cells: distinct targets
					f[i] = float64((7 * i) % (2*n + 2))
				}
				e.Arrays["G"], e.Arrays["F"] = g, f
				for i := range e.Arrays["X"] {
					e.Arrays["X"][i] = 1 + 1e-4*float64(i%13) // keep products tame
				}
				return e
			},
		},
		{
			title: "tri-diagonal elimination (linear IR via Möbius)",
			src:   "for i = 1 to n do X[i] := Z[i]*(Y[i] - X[i-1])",
			setup: func() *lang.Env {
				e := envWith(n+1, nil)
				e.Arrays["Y"] = ramp(n+1, 0.001)
				e.Arrays["Z"] = ramp(n+1, 0.0004)
				return e
			},
		},
		{
			title: "scatter-add histogram (PIC kernels; GIR handles repeated g)",
			src:   "for i = 0 to n do H[J[i]] := H[J[i]] + W[i]",
			setup: func() *lang.Env {
				e := lang.NewEnv()
				e.Scalars["n"] = float64(n)
				e.Arrays["H"] = make([]float64, 64)
				j := make([]float64, n+1)
				w := make([]float64, n+1)
				for i := 0; i <= n; i++ {
					j[i] = float64((i * i) % 64)
					w[i] = float64(i%9) + 0.5
				}
				e.Arrays["J"], e.Arrays["W"] = j, w
				return e
			},
		},
		{
			title: "continued fraction (full Möbius form)",
			src:   "for i = 1 to n do X[i] := (X[i-1] + 1) / (X[i-1] + 2)",
			setup: func() *lang.Env { return envWith(n+1, nil) },
		},
	}

	for _, d := range demos {
		fmt.Printf("== %s\n   %s\n", d.title, d.src)
		loop, err := lang.Parse(d.src)
		if err != nil {
			log.Fatal(err)
		}
		c := lang.Compile(loop)
		fmt.Printf("   form: %-20v bucket: %-20v strategy: %s\n",
			c.Analysis.Form, c.Analysis.Bucket, c.Strategy())

		seq := d.setup()
		if err := lang.Run(loop, seq); err != nil {
			log.Fatal(err)
		}
		par := d.setup()
		if err := c.Execute(par, 0); err != nil {
			log.Fatal(err)
		}
		arr := loop.TargetArray()
		worst := 0.0
		for i, want := range seq.Arrays[arr] {
			got := par.Arrays[arr][i]
			worst = math.Max(worst, math.Abs(got-want)/math.Max(1, math.Abs(want)))
		}
		fmt.Printf("   parallel vs sequential: max rel err %.3g\n\n", worst)
		if worst > 1e-9 {
			log.Fatalf("deviation too large for %q", d.title)
		}
	}
	fmt.Println("all loops auto-parallelized correctly — no dependence analysis used")
}

func envWith(m int, _ []float64) *lang.Env {
	e := lang.NewEnv()
	e.Scalars["n"] = 1000
	x := make([]float64, m)
	for i := range x {
		x[i] = 0.5 + float64(i%17)/33
	}
	e.Arrays["X"] = x
	return e
}

func ramp(m int, step float64) []float64 {
	v := make([]float64, m)
	for i := range v {
		v[i] = 0.1 + step*float64(i)
	}
	return v
}
