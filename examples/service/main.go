// Service: run the irserved solve service in-process, hit it with a burst
// of concurrent clients, and watch the dynamic batcher coalesce compatible
// linear solves into shared Möbius sweeps.
//
//	go run ./examples/service
//
// Every client posts its own chain X[i] := a·X[i-1] + 1; the server holds
// each request for a short batching window and dispatches everything that
// arrived together as ONE moebius.SolveBatchCtx call. The per-request cost
// of a solve drops from "one parallel sweep each" to "a shared sweep,
// amortized" — the service-level version of the paper's batched Livermore
// Loop 23 experiment.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
)

func main() {
	// An in-process service on a loopback port: same wiring as cmd/irserved,
	// minus the flags. A long batching window makes the coalescing visible
	// even on a lightly loaded machine.
	s := server.New(server.Config{
		BatchWindow: 10 * time.Millisecond,
		MaxBatch:    16,
		QueueDepth:  256,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("irserved listening on %s\n\n", base)

	c := client.New(base)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		log.Fatal(err)
	}

	// 48 concurrent clients, each solving a geometric-ish chain with its own
	// ratio a: X[0] = 1, X[i] = a·X[i-1] + 1, closed form checkable in O(1).
	const clients = 48
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxBatch, solved := 0, 0
	start := time.Now()
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			n := 8 + k%5
			a := 1 + float64(k%3)
			req := server.LinearRequest{M: n + 1, X0: make([]float64, n+1)}
			req.X0[0] = 1
			for i := 0; i < n; i++ {
				req.G = append(req.G, i+1)
				req.F = append(req.F, i)
				req.A = append(req.A, a)
				req.B = append(req.B, 1)
			}
			out, err := c.SolveLinear(ctx, req)
			if err != nil {
				log.Fatalf("client %d: %v", k, err)
			}
			want := 1.0
			for i := 0; i < n; i++ {
				want = a*want + 1
			}
			if math.Abs(out.Values[n]-want) > 1e-6*math.Abs(want) {
				log.Fatalf("client %d: X[%d] = %v, want %v", k, n, out.Values[n], want)
			}
			mu.Lock()
			solved++
			if out.BatchSize > maxBatch {
				maxBatch = out.BatchSize
			}
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start)

	batches, coalesced := s.BatchStats()
	fmt.Printf("solved %d/%d chains in %v\n", solved, clients, elapsed.Round(time.Millisecond))
	fmt.Printf("coalescing: %d requests ran as %d batched sweeps (largest batch: %d)\n\n",
		coalesced, batches, maxBatch)

	// The same numbers, as the scrape endpoint reports them.
	text, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected /metrics lines:")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "irserved_batches_total") ||
			strings.HasPrefix(line, "irserved_requests_total") ||
			strings.HasPrefix(line, "irserved_batch_size_count") {
			fmt.Println("  " + line)
		}
	}

	// Graceful drain: stop admitting, finish in-flight work, then exit.
	shCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		log.Fatal(err)
	}
	hs.Shutdown(shCtx)
	fmt.Println("\ndrained and shut down cleanly")
}
