// Simulator: a tour of the SimParC reconstruction — assemble the paper's
// parallel OrdinaryIR program, run it lock-step on a varying number of
// processors, and inspect the disassembly and instruction profile. This is
// the machinery behind the Fig. 3 reproduction.
//
//	go run ./examples/simulator
package main

import (
	"fmt"
	"log"
	"os"

	"indexedrec/internal/core"
	"indexedrec/internal/simparc"
	"indexedrec/internal/workload"
)

func main() {
	const n = 4096
	s := workload.Chain(n)
	init := make([]int64, s.M)
	for x := range init {
		init[x] = 1
	}
	add := func(a, b int64) int64 { return a + b }

	// The baseline: the original sequential loop, as an assembly program.
	seq, err := simparc.RunSeqIR(s, add, init, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original loop:  %8d cycles (n=%d)\n", seq.Cycles, n)

	// The parallel program at a few processor counts.
	want := core.RunSequential[int64](s, core.IntAdd{}, init)
	for _, p := range []int{1, 8, 64, 512} {
		res, err := simparc.RunParallelOIR(s, add, init, p, 1<<32)
		if err != nil {
			log.Fatal(err)
		}
		for x := range want {
			if res.Values[x] != want[x] {
				log.Fatalf("P=%d: wrong answer at cell %d", p, x)
			}
		}
		fmt.Printf("parallel P=%3d: %8d cycles  (%d rounds, %d instrs total, %.2fx vs loop)\n",
			p, res.Cycles, res.Rounds, res.Instrs, float64(seq.Cycles)/float64(res.Cycles))
	}

	// Under the hood: the program text, assembled and disassembled.
	prog, err := simparc.Assemble(simparc.ParallelOIRSource, map[string]int64{
		"NPROC": 4, "K": 10, "ROUNDS": 4, "A": 0, "V": 100, "N": 200,
		"V2": 300, "N2": 400, "NEXT": 500, "INITF": 600, "CELLS": 700,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe parallel program is %d instructions; first 14 disassembled:\n", len(prog.Code))
	simparc.Disassemble(prog, &limitedWriter{left: 14})

	// Profile a raw VM run of the tree-reduction program: which opcodes
	// dominate a lock-step execution.
	fmt.Println("\ninstruction profile of a P=8 tree reduction (n=512):")
	rprog, err := simparc.Assemble(simparc.ReduceSource, map[string]int64{
		"N": 512, "NPROC": 8, "A": 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	vm := simparc.NewVM(rprog, 512)
	vm.OpX = add
	for i := range vm.Mem {
		vm.Mem[i] = 1
	}
	if err := vm.Run(1 << 28); err != nil {
		log.Fatal(err)
	}
	vm.Profile(os.Stdout)
	fmt.Printf("reduction result: %d (want 512)\n", vm.Mem[0])
	fmt.Println("\n(see `irbench -exp fig3` for the full sweep and plot)")
}

// limitedWriter prints at most N lines to stdout then swallows the rest.
type limitedWriter struct{ left int }

func (w *limitedWriter) Write(p []byte) (int, error) {
	start := 0
	for i, b := range p {
		if b != '\n' {
			continue
		}
		if w.left > 0 {
			os.Stdout.Write(p[start : i+1])
			w.left--
		}
		start = i + 1
	}
	if w.left > 0 && start < len(p) {
		os.Stdout.Write(p[start:])
	}
	return len(p), nil
}
