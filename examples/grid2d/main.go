// Grid2D: dynamic programming on 2-D recurrence grids solved by
// anti-diagonal wavefronts. Two classic DP kernels ride the same engine:
//
//   - Edit distance (Levenshtein) over the min-plus semiring: the DP table
//     D[i][j] = min(D[i-1][j]+1, D[i][j-1]+1, D[i-1][j-1]+sub) is exactly a
//     linear 2-D indexed recurrence, and every anti-diagonal is one batched
//     parallel round.
//   - Smith–Waterman local alignment over the max-plus semiring, where the
//     constant-term grid holds the 0 floor that restarts negative-scoring
//     prefixes.
//
// The example solves both cold (compile + solve) and warm (plan replay),
// checks the parallel result against the obvious sequential DP, and prints
// the distances/scores:
//
//	go run ./examples/grid2d
//	go run ./examples/grid2d -a kitten -b sitting
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"indexedrec/internal/workload"
	"indexedrec/ir"
)

func main() {
	a := flag.String("a", "", "first string (empty = a random 600-mer)")
	b := flag.String("b", "", "second string (empty = a random 640-mer)")
	flag.Parse()
	rng := rand.New(rand.NewSource(23))
	if *a == "" {
		*a = randDNA(rng, 600)
	}
	if *b == "" {
		*b = randDNA(rng, 640)
	}
	ctx := context.Background()

	// --- Edit distance over min-plus -----------------------------------
	sys := workload.EditDistance(*a, *b)
	plan, err := ir.CompileGrid2DCtx(ctx, sys)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ir.SolveGrid2DPlanCtx(ctx, plan, sys, ir.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	got := res.Values[len(res.Values)-1]
	want := editDistanceDP(*a, *b)
	fmt.Printf("edit distance      |a|=%d |b|=%d: %.0f (sequential DP: %d) — %d wavefront rounds over %d cells\n",
		len(*a), len(*b), got, want, res.Rounds, res.Cells)
	if int(got) != want {
		log.Fatalf("wavefront disagrees with the sequential DP: %v != %d", got, want)
	}

	// A warm replay of the same plan is bit-identical — the serving-path
	// steady state (plan caches + arena pools) in two lines.
	warm, err := ir.SolveGrid2DPlanCtx(ctx, plan, sys, ir.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := range warm.Values {
		if warm.Values[i] != res.Values[i] {
			log.Fatalf("warm replay diverged at cell %d", i)
		}
	}
	fmt.Println("warm plan replay   bit-identical to the cold solve")

	// --- Smith–Waterman over max-plus ----------------------------------
	const match, mismatch, gap = 2, 1, 1
	sw := workload.SmithWaterman(*a, *b, match, mismatch, gap)
	swRes, err := ir.SolveGrid2D(sw, ir.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	best, bi, bj := 0.0, 0, 0
	for i := 0; i < sw.Rows; i++ {
		for j := 0; j < sw.Cols; j++ {
			if v := swRes.Values[i*sw.Cols+j]; v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	wantBest := smithWatermanDP(*a, *b, match, mismatch, gap)
	fmt.Printf("smith-waterman     best local score %.0f at (%d,%d) (sequential DP: %d)\n", best, bi, bj, wantBest)
	if int(best) != wantBest {
		log.Fatalf("wavefront disagrees with the sequential DP: %v != %d", best, wantBest)
	}
	if len(*a) <= 32 && len(*b) <= 32 {
		fmt.Println(renderTable(*a, *b, res.Values))
	}
}

func randDNA(rng *rand.Rand, n int) string {
	const alpha = "acgt"
	sb := make([]byte, n)
	for i := range sb {
		sb[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(sb)
}

// editDistanceDP is the obvious O(rows·cols) sequential Levenshtein DP.
func editDistanceDP(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			cur[j] = min(min(prev[j]+1, cur[j-1]+1), sub)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// smithWatermanDP is the sequential local-alignment DP with linear gaps.
func smithWatermanDP(a, b string, match, mismatch, gap int) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			s := prev[j-1] + match
			if a[i-1] != b[j-1] {
				s = prev[j-1] - mismatch
			}
			v := max(max(0, s), max(prev[j]-gap, cur[j-1]-gap))
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
		cur[0] = 0
	}
	return best
}

// renderTable pretty-prints a small edit-distance table for the demo.
func renderTable(a, b string, values []float64) string {
	var sb strings.Builder
	sb.WriteString("\n     ")
	for j := 0; j < len(b); j++ {
		fmt.Fprintf(&sb, "%3c", b[j])
	}
	sb.WriteByte('\n')
	for i := 0; i < len(a); i++ {
		fmt.Fprintf(&sb, "  %c ", a[i])
		for j := 0; j < len(b); j++ {
			fmt.Fprintf(&sb, "%3.0f", values[i*len(b)+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
