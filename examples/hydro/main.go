// Hydro: the paper's §3 worked example — Livermore loop 23 (2-D implicit
// hydrodynamics) parallelized through the Möbius transformation, "without
// using any data dependence analysis techniques".
//
// The inner loop
//
//	X[i,j] := X[i,j] + 0.75·(Y[i] + X[i-1,j]·Z[i,j])
//
// is an extended linear indexed recurrence over the flattened array
// (g(i) = 7(i-1)+j). Each column j is independent; within a column the
// updates compose as Möbius maps, so the whole kernel runs in O(log n)
// parallel steps.
//
//	go run ./examples/hydro
package main

import (
	"fmt"
	"log"
	"math"

	"indexedrec/internal/lang"
	"indexedrec/internal/livermore"
)

func main() {
	k := livermore.ByID(23)
	fmt.Println("Livermore loop 23 core (as in the paper, column j fixed):")
	fmt.Println("   ", k.DSL)

	loop, err := lang.Parse(k.DSL)
	if err != nil {
		log.Fatal(err)
	}
	c := lang.Compile(loop)
	fmt.Println("\nclassified:", c.Analysis.Describe())
	fmt.Println("strategy:  ", c.Strategy())

	const rows = 4096
	// Solve all 6 columns the way the paper's outer loop does, comparing
	// the auto-parallelized path against the sequential interpreter.
	var worst float64
	for j := 1; j <= 6; j++ {
		seq := k.Setup(rows)
		seq.Scalars["j"] = float64(j)
		if err := lang.Run(loop, seq); err != nil {
			log.Fatal(err)
		}
		par := k.Setup(rows)
		par.Scalars["j"] = float64(j)
		if err := c.Execute(par, 0); err != nil {
			log.Fatal(err)
		}
		for i, want := range seq.Arrays["X"] {
			got := par.Arrays["X"][i]
			err := math.Abs(got-want) / math.Max(1, math.Abs(want))
			if err > worst {
				worst = err
			}
		}
	}
	fmt.Printf("\n%d rows × 6 columns solved in O(log n) parallel steps per column\n", rows)
	fmt.Printf("max relative deviation from the sequential loop: %.3g\n", worst)
	if worst > 1e-9 {
		log.Fatal("deviation too large — regrouping should only cost rounding")
	}
	fmt.Println("OK — matches the sequential kernel up to float rounding.")
}
