// Quickstart: define an indexed recurrence system, run the sequential
// reference, solve it in parallel with the paper's O(log n) pointer-jumping
// algorithm, and confirm the results agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"indexedrec/ir"
)

func main() {
	// The loop  for i = 0..n-1:  A[g(i)] := A[f(i)] ⊗ A[g(i)]
	// with ⊗ = modular multiplication, a random distinct write map g and a
	// random read map f — the paper's ordinary IR form (§2).
	const (
		m = 1 << 16 // array cells
		n = 1 << 15 // loop iterations
	)
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(m)
	sys := &ir.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < n; i++ {
		sys.G[i] = perm[i]     // distinct targets
		sys.F[i] = rng.Intn(m) // arbitrary operands
	}

	op := ir.MulMod{M: 1_000_003}
	init := make([]int64, m)
	for x := range init {
		init[x] = rng.Int63n(op.M-2) + 2
	}

	// The semantic definition: run the loop as written.
	want := ir.RunSequential[int64](sys, op, init)

	// The paper's parallel algorithm: O(log n) lock-step rounds.
	res, err := ir.SolveOrdinary[int64](sys, op, init, 8)
	if err != nil {
		log.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			log.Fatalf("mismatch at cell %d: %d vs %d", x, res.Values[x], want[x])
		}
	}

	fmt.Printf("system: %v over %s\n", sys, op.Name())
	fmt.Printf("parallel solve matched the sequential loop on all %d cells\n", m)
	fmt.Printf("rounds: %d (= ceil(log2 of longest write chain))\n", res.Rounds)
	fmt.Printf("total ⊗ applications: %d (sequential loop uses %d)\n", res.Combines, n)
	fmt.Println("\nWith P ≫ log n processors each round is a single parallel step,")
	fmt.Println("so the loop runs in O(log n) time instead of O(n).")
}
