// Fibpowers: the paper's §4 general-IR machinery on its own stress example,
// A[i] := A[i-1] ⊗ A[i-2] (paper Figs. 4–6). The trace of A[n] has fib(n)
// leaves — exponentially long — yet the GIR solver computes it with O(n)
// atomic power operations by counting paths in the dependence graph (CAP)
// and using big.Int exponents.
//
//	go run ./examples/fibpowers
package main

import (
	"fmt"
	"log"
	"math/big"

	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/paperfig"
	"indexedrec/internal/trace"
)

func main() {
	const n = 200 // trace length ≈ fib(200) ≈ 2.8e41
	sys := paperfig.Fig4GIR(n)

	// Exact integer run: values would have ~10^40 digits, so we work in
	// Z_p where the atomic power is modular exponentiation.
	op := core.MulMod{M: 999_999_937}
	init := make([]int64, n)
	for x := range init {
		init[x] = int64(2 + x%11)
	}

	res, err := gir.Solve[int64](sys, op, init, gir.Options{Procs: 8})
	if err != nil {
		log.Fatal(err)
	}
	want := core.RunSequential[int64](sys, op, init)
	for x := range want {
		if res.Values[x] != want[x] {
			log.Fatalf("mismatch at cell %d", x)
		}
	}

	last := res.Powers[n-1]
	fmt.Printf("A[%d] trace: %d power terms, largest exponent has %d bits\n",
		n-1, len(last), last[len(last)-1].Count.BitLen())
	girTerms := make([]trace.PowerTerm, len(last))
	for k, t := range last {
		girTerms[k] = trace.PowerTerm{Cell: t.Sink, Exp: t.Count}
	}
	fmt.Printf("A[%d] = %s   (exponents are Fibonacci numbers)\n", n-1, shorten(trace.FormatPowers(girTerms)))
	fmt.Printf("CAP rounds: %d (log of dependence depth), pow ops: %d vs naive fib(%d) ≈ 10^%d multiplications\n",
		res.CAPStats.Rounds, res.PowCalls, n,
		int(float64(last[len(last)-1].Count.BitLen())*0.301))
	fmt.Printf("all %d cells match the sequential loop in Z_%d\n", n, op.M)

	// Small exact showcase (paper Fig. 5, n = 4): true big integers.
	small := paperfig.Fig4GIR(8)
	binit := make([]*big.Int, 8)
	for x := range binit {
		binit[x] = big.NewInt(int64(x + 2))
	}
	bres, err := gir.Solve[*big.Int](small, core.BigMul{}, binit, gir.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact small case: A[7] = %s (A[0]=2, A[1]=3, A[i]=A[i-1]*A[i-2])\n", bres.Values[7])
}

func shorten(s string) string {
	if len(s) > 90 {
		return s[:43] + " ... " + s[len(s)-42:]
	}
	return s
}
